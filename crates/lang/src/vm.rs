//! Concrete bytecode VM: the campaign fast path for
//! [`CompiledProgram`]s.
//!
//! Behaviorally bit-identical to [`crate::interp::run`] on checked
//! programs: same outcomes, same branch/native-call traces, same
//! statement coverage, same fault messages, and — load-bearing for
//! `fuel_exhausted_runs` parity — the same fuel charging points:
//!
//! - one unit per statement, checked **before** the statement executes
//!   ([`Instr::Stmt`], mirroring the walker's `exec_block` prologue);
//! - one additional unit per `while` iteration, checked **before** the
//!   condition is evaluated ([`Instr::LoopGate`], mirroring the
//!   walker's loop prologue);
//! - no charge anywhere else — expressions, calls, and branch exits are
//!   free, exactly as in the walker.
//!
//! Per-run scratch (operand stack + call frames) lives in a
//! thread-local [`VmScratch`] pool so steady-state campaign runs
//! allocate nothing; reuse is invisible in results (see the
//! `scratch_reuse_is_invisible` test).

use crate::compile::{CompiledProgram, Instr};
use crate::diag::StmtId;
use crate::interp::{eval_binop, Fault, FaultKind, InputVector, Outcome, Trace};
use std::cell::RefCell;

/// Reusable per-worker execution scratch: the operand stack and a call
/// frame per nesting depth. Create once (or let the thread-local pool
/// in [`run_compiled`] do it) and reuse across runs.
#[derive(Debug, Default)]
pub struct VmScratch {
    stack: Vec<Val>,
    frames: Vec<Frame>,
}

impl VmScratch {
    /// Fresh, empty scratch.
    pub fn new() -> VmScratch {
        VmScratch::default()
    }
}

#[derive(Debug, Default)]
struct Frame {
    scalars: Vec<i64>,
    arrays: Vec<Vec<i64>>,
}

impl Frame {
    /// Sizes the frame for a block. Slots are *not* zeroed: a checked
    /// program writes every slot (param binding, `StoreScalar`,
    /// `InitArray`) before reading it, so stale values from a previous
    /// run are unobservable.
    fn size_for(&mut self, scalars: u32, arrays: usize) {
        if self.scalars.len() < scalars as usize {
            self.scalars.resize(scalars as usize, 0);
        }
        while self.arrays.len() < arrays {
            self.arrays.push(Vec::new());
        }
    }
}

/// An operand-stack value (same two-kind value space as
/// [`crate::interp::CVal`], kept separate so the stack is `Copy`).
#[derive(Clone, Copy, Debug)]
enum Val {
    Int(i64),
    Bool(bool),
}

impl Val {
    fn int(self) -> Result<i64, Fault> {
        match self {
            Val::Int(v) => Ok(v),
            Val::Bool(_) => Err(Fault::other("expected integer value")),
        }
    }

    fn bool(self) -> Result<bool, Fault> {
        match self {
            Val::Bool(v) => Ok(v),
            Val::Int(_) => Err(Fault::other("expected boolean value")),
        }
    }
}

/// How a block finished.
enum Exit {
    /// Fell off the end.
    Fall,
    /// Whole-program stop (`error`, `return;`, fuel exhaustion).
    Stop(Outcome),
    /// `return expr;` — value for the caller.
    Ret(i64),
}

struct Vm<'a, 's> {
    cp: &'a CompiledProgram,
    scratch: &'s mut VmScratch,
    trace: Trace,
    fuel: u64,
    instructions: u64,
}

impl<'a> Vm<'a, '_> {
    fn exec_block(&mut self, block_idx: usize, depth: usize) -> Result<Exit, Fault> {
        let cp = self.cp;
        let block = &cp.blocks[block_idx];
        let code = &block.code;
        let mut pc = 0usize;
        while let Some(instr) = code.get(pc) {
            pc += 1;
            self.instructions += 1;
            match *instr {
                Instr::Stmt(id) => {
                    if self.fuel == 0 {
                        return Ok(Exit::Stop(Outcome::OutOfFuel));
                    }
                    self.fuel -= 1;
                    self.trace.stmts.insert(id);
                }
                Instr::LoopGate => {
                    if self.fuel == 0 {
                        return Ok(Exit::Stop(Outcome::OutOfFuel));
                    }
                    self.fuel -= 1;
                }
                Instr::PushInt(v) => self.scratch.stack.push(Val::Int(v)),
                Instr::LoadScalar(slot) => {
                    let v = self.scratch.frames[depth].scalars[slot as usize];
                    self.scratch.stack.push(Val::Int(v));
                }
                Instr::LoadElem(slot) => {
                    let i = self.pop().int()?;
                    let items = &self.scratch.frames[depth].arrays[slot as usize];
                    let len = items.len();
                    let v = usize::try_from(i)
                        .ok()
                        .and_then(|i| items.get(i).copied())
                        .ok_or_else(|| {
                            let name = &block.arrays[slot as usize].name;
                            Fault::new(
                                FaultKind::OutOfBounds,
                                format!("index {i} out of bounds for `{name}` (len {len})"),
                            )
                        })?;
                    self.scratch.stack.push(Val::Int(v));
                }
                Instr::StoreScalar(slot) => {
                    let v = self.pop().int()?;
                    self.scratch.frames[depth].scalars[slot as usize] = v;
                }
                Instr::StoreElem(slot) => {
                    let v = self.pop().int()?;
                    let i = self.pop().int()?;
                    let items = &mut self.scratch.frames[depth].arrays[slot as usize];
                    let len = items.len();
                    let cell = usize::try_from(i)
                        .ok()
                        .and_then(|i| items.get_mut(i))
                        .ok_or_else(|| {
                            let name = &block.arrays[slot as usize].name;
                            Fault::new(
                                FaultKind::OutOfBounds,
                                format!("index {i} out of bounds for `{name}` (len {len})"),
                            )
                        })?;
                    *cell = v;
                }
                Instr::InitArray(slot) => {
                    let len = block.arrays[slot as usize].len;
                    let items = &mut self.scratch.frames[depth].arrays[slot as usize];
                    items.clear();
                    items.resize(len, 0);
                }
                Instr::Neg => {
                    let v = self.pop().int()?;
                    let v = v.checked_neg().ok_or_else(|| {
                        Fault::new(FaultKind::Overflow, "arithmetic overflow in negation")
                    })?;
                    self.scratch.stack.push(Val::Int(v));
                }
                Instr::Not => {
                    let v = self.pop().bool()?;
                    self.scratch.stack.push(Val::Bool(!v));
                }
                Instr::Bin(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    let out = eval_binop(op, a.into(), b.into())?;
                    self.scratch.stack.push(out.into());
                }
                Instr::CallNative { native, argc } => {
                    let args = self.pop_ints(argc as usize)?;
                    let entry = &cp.natives[native as usize];
                    if entry.arity != args.len() {
                        return Err(Fault::native(format!(
                            "native `{}` expects {} arguments, got {}",
                            entry.name,
                            entry.arity,
                            args.len()
                        )));
                    }
                    let out = (entry.imp)(&args);
                    self.trace
                        .native_calls
                        .push((entry.name.clone(), args, out));
                    self.scratch.stack.push(Val::Int(out));
                }
                Instr::CallFn { func } => {
                    let f = &cp.funcs[func as usize];
                    let args = self.pop_ints(f.arity)?;
                    let target = &cp.blocks[f.block];
                    if self.scratch.frames.len() <= depth + 1 {
                        self.scratch.frames.push(Frame::default());
                    }
                    let frame = &mut self.scratch.frames[depth + 1];
                    frame.size_for(target.scalars, target.arrays.len());
                    frame.scalars[..args.len()].copy_from_slice(&args);
                    match self.exec_block(f.block, depth + 1)? {
                        Exit::Ret(v) => self.scratch.stack.push(Val::Int(v)),
                        Exit::Fall | Exit::Stop(Outcome::Returned) => {
                            return Err(Fault::other(format!(
                                "fn `{}` terminated without returning a value",
                                f.name
                            )));
                        }
                        Exit::Stop(o) => return Ok(Exit::Stop(o)),
                    }
                }
                Instr::UndefinedCall { name, argc } => {
                    let _ = self.pop_ints(argc as usize)?;
                    let name = &cp.strings[name as usize];
                    return Err(Fault::other(format!("callable `{name}` is not defined")));
                }
                Instr::Branch { id, if_false } => {
                    let taken = self.pop().bool()?;
                    self.trace.branches.push((id, taken));
                    if !taken {
                        pc = if_false as usize;
                    }
                }
                Instr::Jump(target) => pc = target as usize,
                Instr::Error(code) => return Ok(Exit::Stop(Outcome::Error(code))),
                Instr::ReturnBare => return Ok(Exit::Stop(Outcome::Returned)),
                Instr::ReturnValue => {
                    let v = self.pop().int()?;
                    return Ok(Exit::Ret(v));
                }
            }
        }
        Ok(Exit::Fall)
    }

    fn pop(&mut self) -> Val {
        self.scratch
            .stack
            .pop()
            .expect("compiled code keeps the operand stack balanced")
    }

    fn pop_ints(&mut self, n: usize) -> Result<Vec<i64>, Fault> {
        let at = self.scratch.stack.len() - n;
        let mut out = Vec::with_capacity(n);
        for v in self.scratch.stack.drain(at..) {
            out.push(v.int()?);
        }
        Ok(out)
    }
}

impl From<Val> for crate::interp::CVal {
    fn from(v: Val) -> Self {
        match v {
            Val::Int(i) => crate::interp::CVal::Int(i),
            Val::Bool(b) => crate::interp::CVal::Bool(b),
        }
    }
}

impl From<crate::interp::CVal> for Val {
    fn from(v: crate::interp::CVal) -> Self {
        match v {
            crate::interp::CVal::Int(i) => Val::Int(i),
            crate::interp::CVal::Bool(b) => Val::Bool(b),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<VmScratch> = RefCell::new(VmScratch::new());
}

/// Runs a compiled program on concrete inputs: the drop-in fast
/// replacement for [`crate::interp::run`].
///
/// # Panics
///
/// Panics if the input vector width does not match the program (same
/// contract as [`InputVector::bind`]).
pub fn run_compiled(cp: &CompiledProgram, inputs: &InputVector, fuel: u64) -> (Outcome, Trace) {
    let (outcome, trace, _) = run_compiled_counted(cp, inputs, fuel);
    (outcome, trace)
}

/// Like [`run_compiled`], additionally returning the number of bytecode
/// instructions retired (for `ExecStats` accounting).
pub fn run_compiled_counted(
    cp: &CompiledProgram,
    inputs: &InputVector,
    fuel: u64,
) -> (Outcome, Trace, u64) {
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => run_compiled_with_scratch(&mut scratch, cp, inputs, fuel),
        // A native implementation re-entered the VM on this thread;
        // fall back to fresh scratch for the nested run.
        Err(_) => run_compiled_with_scratch(&mut VmScratch::new(), cp, inputs, fuel),
    })
}

/// [`run_compiled_counted`] against caller-owned scratch (used by tests
/// proving scratch reuse is invisible; campaigns use the thread-local
/// pool).
pub fn run_compiled_with_scratch(
    scratch: &mut VmScratch,
    cp: &CompiledProgram,
    inputs: &InputVector,
    fuel: u64,
) -> (Outcome, Trace, u64) {
    assert_eq!(inputs.len(), cp.input_width, "input vector width mismatch");
    scratch.stack.clear();
    if scratch.frames.is_empty() {
        scratch.frames.push(Frame::default());
    }
    let main = &cp.blocks[cp.main];
    {
        let frame = &mut scratch.frames[0];
        frame.size_for(main.scalars, main.arrays.len());
        let mut i = 0usize;
        for p in &cp.params {
            match *p {
                crate::compile::ParamSlot::Scalar(slot) => {
                    frame.scalars[slot as usize] = inputs.get(i).expect("width checked");
                    i += 1;
                }
                crate::compile::ParamSlot::Array(slot, len) => {
                    let arr = &mut frame.arrays[slot as usize];
                    arr.clear();
                    arr.extend((i..i + len).map(|k| inputs.get(k).expect("width checked")));
                    i += len;
                }
            }
        }
    }
    let main_idx = cp.main;
    let mut vm = Vm {
        cp,
        scratch,
        trace: Trace::default(),
        fuel,
        instructions: 0,
    };
    let (outcome, trace) = match vm.exec_block(main_idx, 0) {
        Ok(Exit::Fall) | Ok(Exit::Stop(Outcome::Returned)) | Ok(Exit::Ret(_)) => {
            (Outcome::Returned, vm.trace)
        }
        Ok(Exit::Stop(outcome)) => (outcome, vm.trace),
        Err(fault) => (Outcome::RuntimeFault(fault), vm.trace),
    };
    let instructions = vm.instructions;
    (outcome, trace, instructions)
}

/// Pre-order statement ids executed, as [`StmtId`]s (convenience for
/// coverage comparisons against [`crate::interp::run`]'s traces).
pub fn executed_stmt_ids(trace: &Trace) -> Vec<StmtId> {
    trace.stmts.iter().map(|&i| StmtId(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::interp::{run, NativeRegistry};
    use crate::parser::parse;

    fn compiled(src: &str, natives: &NativeRegistry) -> CompiledProgram {
        let p = parse(src).unwrap();
        compile(&p, natives).unwrap()
    }

    /// Runs tree-walker and VM side by side and asserts identical
    /// observable behavior (outcome, branches, native calls, stmts).
    fn assert_identical(src: &str, natives: &NativeRegistry, inputs: Vec<i64>, fuel: u64) {
        let p = parse(src).unwrap();
        let cp = compile(&p, natives).unwrap();
        let iv = InputVector::new(inputs);
        let (to, tt) = run(&p, natives, &iv, fuel);
        let (vo, vt) = run_compiled(&cp, &iv, fuel);
        assert_eq!(to, vo, "outcome mismatch");
        assert_eq!(tt.branches, vt.branches, "branch trace mismatch");
        assert_eq!(tt.native_calls, vt.native_calls, "native calls mismatch");
        assert_eq!(tt.stmts, vt.stmts, "statement coverage mismatch");
    }

    #[test]
    fn straight_line_matches_walker() {
        assert_identical(
            "program t(x: int) { let a = x + 1; if (a == 5) { error(9); } return; }",
            &NativeRegistry::new(),
            vec![4],
            100,
        );
    }

    #[test]
    fn loops_arrays_and_functions_match_walker() {
        let src = r#"
            fn double(v: int) { return v * 2; }
            program t(x: int, buf: array[3]) {
                let acc[2];
                let i = 0;
                while (i < 3) {
                    acc[0] = acc[0] + buf[i];
                    i = i + 1;
                }
                acc[1] = double(acc[0]);
                if (acc[1] == x) { error(3); }
                return;
            }
        "#;
        for x in [-2, 0, 6, 12] {
            assert_identical(src, &NativeRegistry::new(), vec![x, 1, 2, 3], 1000);
        }
    }

    /// Fuel-accounting audit: the VM charges fuel at exactly the
    /// walker's points, so exhaustion happens on the same statement for
    /// *every* fuel value from 0 up to the program's full cost.
    #[test]
    fn fuel_charging_points_match_walker_exactly() {
        let srcs = [
            "program t(x: int) { let i = 0; while (i < x) { i = i + 1; } return; }",
            r#"
            fn spin(v: int) {
                let i = 0;
                while (i < v) { i = i + 1; }
                return i;
            }
            program t(x: int) { let a = spin(x); let b = a + 1; return; }
            "#,
            r#"program t(x: int) {
                let j = 0;
                while (j < x) {
                    let tmp[2];
                    tmp[0] = j;
                    if (tmp[0] == 3) { let z = 1; } else { let z = 2; }
                    j = j + 1;
                }
                return;
            }"#,
        ];
        let n = NativeRegistry::new();
        for src in srcs {
            let p = parse(src).unwrap();
            let cp = compile(&p, &n).unwrap();
            let iv = InputVector::new(vec![5]);
            for fuel in 0..200 {
                let (to, tt) = run(&p, &n, &iv, fuel);
                let (vo, vt) = run_compiled(&cp, &iv, fuel);
                assert_eq!(to, vo, "outcome diverged at fuel {fuel}");
                assert_eq!(
                    tt.branches, vt.branches,
                    "branch trace diverged at fuel {fuel}"
                );
                assert_eq!(tt.stmts, vt.stmts, "coverage diverged at fuel {fuel}");
            }
        }
    }

    #[test]
    fn faults_match_walker() {
        let n = NativeRegistry::new();
        // Out of bounds (negative and too-large), div by zero, overflow.
        assert_identical(
            "program t(buf: array[2], i: int) { let a = buf[i]; return; }",
            &n,
            vec![1, 2, 5],
            100,
        );
        assert_identical(
            "program t(buf: array[2], i: int) { let a = buf[i]; return; }",
            &n,
            vec![1, 2, -1],
            100,
        );
        assert_identical(
            "program t(x: int) { let a = 10 / x; return; }",
            &n,
            vec![0],
            100,
        );
        assert_identical(
            "program t(x: int) { let a = x * x; return; }",
            &n,
            vec![i64::MAX],
            100,
        );
        assert_identical(
            "program t(x: int) { let a = 0 - x; let b = a - 1; return; }",
            &n,
            vec![i64::MAX],
            100,
        );
    }

    #[test]
    fn native_calls_and_undefined_callables_match_walker() {
        let mut n = NativeRegistry::new();
        n.register("hash", 1, |a| a[0].wrapping_mul(13) % 1000);
        assert_identical(
            "native hash/1; program t(x: int, y: int) { if (x == hash(y) && y == hash(x)) { error(1); } return; }",
            &n,
            vec![33, 42],
            100,
        );
        // Declared but unregistered native: identical fault.
        assert_identical(
            "native hash/1; program t(x: int) { let a = hash(x); return; }",
            &NativeRegistry::new(),
            vec![7],
            100,
        );
    }

    #[test]
    fn shadowing_matches_walker() {
        let src = r#"program t(x: int) {
            let a = 1;
            if (x == 0) { let a = 2; if (a == 2) { error(7); } }
            if (a == 1) { error(1); }
            return;
        }"#;
        assert_identical(src, &NativeRegistry::new(), vec![0], 100);
        assert_identical(src, &NativeRegistry::new(), vec![1], 100);
    }

    #[test]
    fn loop_body_redeclares_arrays() {
        // The walker re-creates `tmp` zeroed on every iteration; the VM's
        // InitArray must do the same, not keep the previous iteration's
        // contents.
        let src = r#"program t(x: int) {
            let i = 0;
            while (i < 3) {
                let tmp[2];
                if (tmp[0] == 0) { tmp[0] = i + 1; } else { error(9); }
                i = i + 1;
            }
            return;
        }"#;
        assert_identical(src, &NativeRegistry::new(), vec![0], 1000);
    }

    #[test]
    fn corpus_matches_walker_on_probe_inputs() {
        for (name, ctor) in crate::corpus::all() {
            let (p, n) = ctor();
            let cp = compile(&p, &n).unwrap();
            let width = p.input_width();
            for seed in 0..16i64 {
                let inputs: Vec<i64> = (0..width)
                    .map(|k| seed.wrapping_mul(2654435761).wrapping_add(k as i64 * 97) % 1000)
                    .collect();
                let iv = InputVector::new(inputs);
                let (to, tt) = run(&p, &n, &iv, 10_000);
                let (vo, vt) = run_compiled(&cp, &iv, 10_000);
                assert_eq!(to, vo, "{name}: outcome mismatch on seed {seed}");
                assert_eq!(tt.branches, vt.branches, "{name}: branches seed {seed}");
                assert_eq!(
                    tt.native_calls, vt.native_calls,
                    "{name}: natives seed {seed}"
                );
                assert_eq!(tt.stmts, vt.stmts, "{name}: coverage seed {seed}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        let (p, n) = crate::corpus::fanout();
        let cp = compile(&p, &n).unwrap();
        let mut scratch = VmScratch::new();
        let iv = InputVector::new(vec![3; p.input_width()]);
        let fresh = run_compiled_with_scratch(&mut VmScratch::new(), &cp, &iv, 10_000);
        for _ in 0..3 {
            let reused = run_compiled_with_scratch(&mut scratch, &cp, &iv, 10_000);
            assert_eq!(fresh.0, reused.0);
            assert_eq!(fresh.1.branches, reused.1.branches);
            assert_eq!(fresh.1.native_calls, reused.1.native_calls);
            assert_eq!(fresh.1.stmts, reused.1.stmts);
            assert_eq!(fresh.2, reused.2);
        }
        // And reuse across *different* programs on the same scratch.
        let (p2, n2) = crate::corpus::budget_cliff();
        let cp2 = compile(&p2, &n2).unwrap();
        let iv2 = InputVector::new(vec![9; p2.input_width()]);
        let a = run_compiled_with_scratch(&mut scratch, &cp2, &iv2, 10_000);
        let b = run_compiled_with_scratch(&mut VmScratch::new(), &cp2, &iv2, 10_000);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.branches, b.1.branches);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn instruction_count_is_positive_and_deterministic() {
        let cp = compiled(
            "program t(x: int) { let i = 0; while (i < x) { i = i + 1; } return; }",
            &NativeRegistry::new(),
        );
        let iv = InputVector::new(vec![10]);
        let (_, _, a) = run_compiled_counted(&cp, &iv, 10_000);
        let (_, _, b) = run_compiled_counted(&cp, &iv, 10_000);
        assert!(a > 0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics_like_bind() {
        let cp = compiled(
            "program t(x: int, y: int) { return; }",
            &NativeRegistry::new(),
        );
        let _ = run_compiled(&cp, &InputVector::new(vec![1]), 100);
    }
}
