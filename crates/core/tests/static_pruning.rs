//! Acceptance test for the static search oracle: with
//! `static_pruning: true` the driver issues strictly fewer
//! solver/validity queries over the paper corpus while discovering the
//! exact same error sets.
//!
//! Soundness argument for the per-program assertions: pruning only
//! removes worklist targets whose flipped direction the analysis proved
//! infeasible; every such target would have been rejected by the solver
//! anyway, so the executed-run sequence is unchanged.

use hotg_core::{Driver, DriverConfig, Technique};
use hotg_lang::corpus;

fn config(width: usize, pruning: bool) -> DriverConfig {
    DriverConfig {
        max_runs: 25,
        static_pruning: pruning,
        ..DriverConfig::with_initial(vec![0; width])
    }
}

#[test]
fn pruning_saves_queries_and_preserves_errors() {
    for technique in [Technique::DartSound, Technique::HigherOrder] {
        let mut calls_on = 0usize;
        let mut calls_off = 0usize;
        let mut pruned_total = 0usize;
        for (name, ctor) in corpus::all() {
            let (program, natives) = ctor();
            let width = program.input_width();
            let on = Driver::new(&program, &natives, config(width, true)).run(technique);
            let off = Driver::new(&program, &natives, config(width, false)).run(technique);
            assert_eq!(
                on.errors.keys().collect::<Vec<_>>(),
                off.errors.keys().collect::<Vec<_>>(),
                "{technique} on {name}: pruning changed the discovered errors"
            );
            assert!(
                on.solver_calls <= off.solver_calls,
                "{technique} on {name}: pruning increased solver calls \
                 ({} vs {})",
                on.solver_calls,
                off.solver_calls
            );
            assert_eq!(
                off.targets_pruned_static, 0,
                "{technique} on {name}: counter must stay zero when disabled"
            );
            calls_on += on.solver_calls;
            calls_off += off.solver_calls;
            pruned_total += on.targets_pruned_static;
        }
        assert!(
            calls_on < calls_off,
            "{technique}: expected strictly fewer solver calls with the \
             static oracle ({calls_on} vs {calls_off})"
        );
        assert!(pruned_total >= 1, "{technique}: no target was ever pruned");
    }
}

#[test]
fn lint_demo_prunes_and_presamples() {
    let (program, natives) = corpus::lint_demo();
    let driver = Driver::new(&program, &natives, config(1, true));
    let report = driver.run(Technique::HigherOrder);
    // `x = 0` reaches the statically-decided inner branch, whose flip
    // target is dropped before any validity query.
    assert!(report.targets_pruned_static >= 1, "{report}");
    // `hash(7)` has constant arguments and is pre-sampled.
    assert_eq!(report.presampled_sites, 1, "{report}");
    // The oracle never hides the real error behind `x == hash(7) + 1`.
    assert!(report.found_error(1), "{report}");
}

#[test]
fn presampling_is_off_when_disabled() {
    let (program, natives) = corpus::lint_demo();
    let driver = Driver::new(&program, &natives, config(1, false));
    let report = driver.run(Technique::HigherOrder);
    assert_eq!(report.presampled_sites, 0);
    assert_eq!(report.targets_pruned_static, 0);
    assert!(report.found_error(1), "{report}");
}
