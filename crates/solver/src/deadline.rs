//! Cooperative wall-clock cutoff for solver loops.
//!
//! A [`Deadline`] is a `Copy` token threaded through [`crate::lia::LiaConfig`]
//! and [`crate::smt::SmtConfig`]. The branch-and-bound loop and the DPLL(T)
//! refinement loop poll it between nodes/rounds and concede `Unknown` once it
//! expires — no threads are killed, no state is poisoned, the caller simply
//! gets a weaker (but sound) verdict. A deadline-induced `Unknown` must never
//! be memoized in a shared query cache: it is a property of the schedule, not
//! of the query.

use std::time::{Duration, Instant};

/// An optional wall-clock cutoff. `Deadline::NONE` never expires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// The absent deadline: never expires.
    pub const NONE: Deadline = Deadline(None);

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline(Some(instant))
    }

    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline(Some(Instant::now() + d))
    }

    /// `true` once the cutoff has passed. Always `false` for `NONE`.
    pub fn expired(&self) -> bool {
        match self.0 {
            None => false,
            Some(t) => Instant::now() >= t,
        }
    }

    /// `true` if a cutoff is set at all.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// The earlier of two deadlines (`NONE` is treated as +∞).
    pub fn earliest(self, other: Deadline) -> Deadline {
        match (self.0, other.0) {
            (None, b) => Deadline(b),
            (a, None) => Deadline(a),
            (Some(a), Some(b)) => Deadline(Some(a.min(b))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        assert!(!Deadline::NONE.expired());
        assert!(!Deadline::NONE.is_set());
    }

    #[test]
    fn past_deadline_is_expired() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
        assert!(d.is_set());
    }

    #[test]
    fn future_deadline_not_yet_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
    }

    #[test]
    fn earliest_prefers_the_sooner_cutoff() {
        let soon = Deadline::after(Duration::from_millis(1));
        let late = Deadline::after(Duration::from_secs(3600));
        assert_eq!(soon.earliest(late), soon);
        assert_eq!(late.earliest(soon), soon);
        assert_eq!(Deadline::NONE.earliest(soon), soon);
        assert_eq!(soon.earliest(Deadline::NONE), soon);
        assert_eq!(Deadline::NONE.earliest(Deadline::NONE), Deadline::NONE);
    }
}
