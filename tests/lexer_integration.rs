//! APP-LEXER: the §7 comparison, asserted end-to-end.

use hotg_core::Technique;
use hotg_lexapp::{campaign, full_comparison, LexerVariant};

#[test]
fn higher_order_fully_parses_fixed_lexer() {
    let out = campaign(LexerVariant::Fixed, Technique::HigherOrder, 60);
    assert!(out.full_parse, "{}", out.report);
    assert_eq!(out.depth, 3);
    // Coverage is total: every direction of every branch.
    assert_eq!(
        out.report.covered_directions(),
        2 * out.report.branch_sites as usize
    );
}

#[test]
fn baselines_defeated_by_the_lexer() {
    for technique in [
        Technique::Random,
        Technique::DartUnsound,
        Technique::DartSound,
        Technique::DartSoundDelayed,
    ] {
        let out = campaign(LexerVariant::Fixed, technique, 60);
        assert_eq!(
            out.depth, 0,
            "{technique} should be stuck at the lexer: {}",
            out.report
        );
    }
}

#[test]
fn scanning_variant_full_parse() {
    let out = campaign(LexerVariant::Scanning, Technique::HigherOrder, 60);
    assert!(out.full_parse, "{}", out.report);
    for technique in [Technique::Random, Technique::DartUnsound] {
        let other = campaign(LexerVariant::Scanning, technique, 60);
        assert!(
            !other.full_parse,
            "{technique} must not reach `if end`: {}",
            other.report
        );
    }
}

#[test]
fn comparison_tables_consistent() {
    let (outcomes, table) = full_comparison(LexerVariant::Fixed, 30);
    assert_eq!(outcomes.len(), Technique::ALL.len());
    let hotg = outcomes
        .iter()
        .find(|o| o.report.technique == Technique::HigherOrder)
        .expect("higher-order outcome present");
    let best_other = outcomes
        .iter()
        .filter(|o| {
            !matches!(
                o.report.technique,
                Technique::HigherOrder | Technique::HigherOrderCompositional
            )
        })
        .map(|o| o.depth)
        .max()
        .unwrap();
    assert!(
        hotg.depth > best_other,
        "higher-order must beat all baselines:\n{table}"
    );
}
