//! Sorts and concrete values of the logic.
//!
//! The theory `T` in the paper is left abstract; our engine instantiates it
//! with quantifier-free linear integer arithmetic plus booleans, combined
//! with the theory of equality with uninterpreted functions (EUF) — written
//! `T ∪ T_EUF` in Section 5 of the paper.

use std::fmt;

/// The sort (logic-level type) of a term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// Mathematical integers (program `int`s are modelled as unbounded).
    Int,
    /// Booleans.
    Bool,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Int => f.write_str("Int"),
            Sort::Bool => f.write_str("Bool"),
        }
    }
}

/// A concrete value of some [`Sort`].
///
/// # Examples
///
/// ```
/// use hotg_logic::{Sort, Value};
///
/// assert_eq!(Value::Int(3).sort(), Sort::Int);
/// assert_eq!(Value::Bool(true).sort(), Sort::Bool);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// The sort this value inhabits.
    pub fn sort(self) -> Sort {
        match self {
            Value::Int(_) => Sort::Int,
            Value::Bool(_) => Sort::Bool,
        }
    }

    /// Extracts the integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Bool(_) => panic!("expected Int value, found Bool"),
        }
    }

    /// Extracts the boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a boolean.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(v) => v,
            Value::Int(_) => panic!("expected Bool value, found Int"),
        }
    }

    /// Extracts the integer payload if present.
    pub fn int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Bool(_) => None,
        }
    }

    /// Extracts the boolean payload if present.
    pub fn bool(self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(v),
            Value::Int(_) => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts() {
        assert_eq!(Value::Int(0).sort(), Sort::Int);
        assert_eq!(Value::Bool(false).sort(), Sort::Bool);
        assert_eq!(Sort::Int.to_string(), "Int");
        assert_eq!(Sort::Bool.to_string(), "Bool");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::Int(7).int(), Some(7));
        assert_eq!(Value::Int(7).bool(), None);
        assert_eq!(Value::Bool(true).bool(), Some(true));
        assert_eq!(Value::Bool(true).int(), None);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_bool() {
        let _ = Value::Bool(true).as_int();
    }

    #[test]
    #[should_panic(expected = "expected Bool")]
    fn as_bool_panics_on_int() {
        let _ = Value::Int(1).as_bool();
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
