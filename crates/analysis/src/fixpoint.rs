//! The whole-program fixpoint analyzer: one abstract interpretation of a
//! `mini` program computing, simultaneously,
//!
//! * **input taint** per conditional site (which flat inputs a branch
//!   condition may depend on),
//! * **constancy** per conditional site (always-true / always-false /
//!   unknown, via constant propagation and interval reasoning),
//! * **reachability** per statement (statements after an `error`/`return`
//!   or under a decided branch are dead),
//! * **native-opacity** per native call site (constant arguments →
//!   pre-sampleable; input-dependent; dead).
//!
//! Defined functions are analyzed by inlining at each (abstract) call
//! site — `mini` forbids recursion syntactically, so this terminates;
//! loops run to an interval fixpoint with widening after a few
//! iterations.

use crate::domain::{div_kind_of, rel_of, AbsVal, Constancy, Interval, Taint};
use hotg_lang::{stmt_ids, BinOp, BranchId, Expr, FuncDef, Param, Program, Stmt, StmtId, UnOp};
use std::collections::{BTreeSet, HashMap};

/// Classification of one native call site (an `Expr::Call` of a declared
/// native), the analysis-side realization of the paper's input-dependence
/// test for unknown functions (§3): only *input-dependent* sites need an
/// uninterpreted function symbol; constant sites have a single observable
/// input/output pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiteClass {
    /// Reached with the same statically-constant argument tuple on every
    /// path: the concrete native can be sampled once, ahead of time, and
    /// the pair fed to the IOF table.
    ConstArgs(Vec<i64>),
    /// Reached with arguments that may depend on program inputs.
    InputDependent,
    /// Never reached.
    Dead,
}

/// One native call site, in pre-order (statement order, then
/// left-to-right within a statement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NativeSite {
    /// Site index (position in [`AnalysisResult::native_sites`]).
    pub site: usize,
    /// Native function name.
    pub name: String,
    /// The statement containing the call (for spans).
    pub stmt: StmtId,
    /// Classification.
    pub class: SiteClass,
}

/// Facts about one conditional site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchFact {
    /// `false` when the site is in dead code (never analyzed as
    /// reachable); `taint`/`constancy` are then vacuous.
    pub reached: bool,
    /// Flat input indices the condition may depend on — an
    /// over-approximation of the free variables of the dynamic
    /// path-constraint conjunct at this site.
    pub taint: Taint,
    /// Static truth of the condition over all reaching states.
    pub constancy: Constancy,
}

impl BranchFact {
    fn dead() -> BranchFact {
        BranchFact {
            reached: false,
            taint: Taint::new(),
            constancy: Constancy::Unknown,
        }
    }
}

/// Result of analyzing one program. Produced by [`crate::analyze`].
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// Per-conditional-site facts, indexed by [`BranchId`].
    branches: Vec<BranchFact>,
    /// Statements never reached by any abstract execution.
    dead_stmts: BTreeSet<StmtId>,
    /// Total number of statements.
    stmt_count: usize,
    /// Native call sites in pre-order.
    native_sites: Vec<NativeSite>,
    /// Number of flat inputs.
    input_count: usize,
}

impl AnalysisResult {
    /// Facts for conditional site `id` ([`BranchFact::dead`]-shaped for
    /// out-of-range ids).
    pub fn branch(&self, id: BranchId) -> &BranchFact {
        static DEAD: BranchFact = BranchFact {
            reached: false,
            taint: Taint::new(),
            constancy: Constancy::Unknown,
        };
        self.branches.get(id.0 as usize).unwrap_or(&DEAD)
    }

    /// The static input-taint set of the condition at site `id`.
    pub fn taint_of(&self, id: BranchId) -> &Taint {
        &self.branch(id).taint
    }

    /// Static truth of the condition at site `id`.
    pub fn constancy_of(&self, id: BranchId) -> Constancy {
        self.branch(id).constancy
    }

    /// `true` if taking direction `dir` at site `id` is statically
    /// impossible — the branch is decided the other way (or the site is
    /// dead code). Such a branch-flip target cannot be satisfied by any
    /// input, so the driver can skip its solver query.
    pub fn flip_infeasible(&self, id: BranchId, dir: bool) -> bool {
        let fact = self.branch(id);
        if !fact.reached {
            return true;
        }
        match fact.constancy {
            Constancy::AlwaysTrue => !dir,
            Constancy::AlwaysFalse => dir,
            Constancy::Unknown => false,
        }
    }

    /// Statements never reached by any abstract execution.
    pub fn dead_stmts(&self) -> &BTreeSet<StmtId> {
        &self.dead_stmts
    }

    /// `true` if statement `id` is unreachable.
    pub fn is_dead(&self, id: StmtId) -> bool {
        self.dead_stmts.contains(&id)
    }

    /// Total number of statements in the program.
    pub fn stmt_count(&self) -> usize {
        self.stmt_count
    }

    /// Native call sites in pre-order.
    pub fn native_sites(&self) -> &[NativeSite] {
        &self.native_sites
    }

    /// Number of conditional sites.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Number of flat inputs of the analyzed program.
    pub fn input_count(&self) -> usize {
        self.input_count
    }
}

/// Analyzes a (checked) program. See the module docs for what comes out.
pub fn analyze(program: &Program) -> AnalysisResult {
    let mut az = Analyzer::new(program);
    let mut state = az.initial_state();
    let mut ret = None;
    az.exec_block_no_scope(&mut state, &program.body, &mut ret);
    az.finish()
}

/// How a block terminates, abstractly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flow {
    /// May fall through to the next statement.
    Cont,
    /// Every path stops (`error`, `return`, or a provably non-exiting
    /// loop) before falling through.
    Stop,
}

/// A scalar or array-summary binding.
#[derive(Clone, Debug, PartialEq)]
enum Slot {
    Scalar(AbsVal),
    /// Array summary: the join of every element (plus written-index
    /// taint).
    Array(AbsVal),
}

impl Slot {
    fn join_with(&mut self, other: &Slot) {
        match (self, other) {
            (Slot::Scalar(a), Slot::Scalar(b)) | (Slot::Array(a), Slot::Array(b)) => {
                *a = a.join(b);
            }
            _ => unreachable!("checker rules out scalar/array kind changes"),
        }
    }

    fn widen_to(&mut self, next: &Slot) {
        match (self, next) {
            (Slot::Scalar(a), Slot::Scalar(b)) | (Slot::Array(a), Slot::Array(b)) => {
                *a = a.widen(b);
            }
            _ => unreachable!("checker rules out scalar/array kind changes"),
        }
    }
}

/// Lexically scoped abstract environment.
#[derive(Clone, Debug, PartialEq)]
struct AbsState {
    scopes: Vec<HashMap<String, Slot>>,
}

impl AbsState {
    fn new() -> AbsState {
        AbsState {
            scopes: vec![HashMap::new()],
        }
    }

    fn lookup(&self, name: &str) -> &Slot {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .expect("checked program: name resolved")
    }

    fn lookup_mut(&mut self, name: &str) -> &mut Slot {
        self.scopes
            .iter_mut()
            .rev()
            .find_map(|s| s.get_mut(name))
            .expect("checked program: name resolved")
    }

    fn declare(&mut self, name: &str, slot: Slot) {
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name.to_string(), slot);
    }

    /// Pointwise join; both states must have the same scope shape (they
    /// branched from a common state and blocks pop their scopes).
    fn join_with(&mut self, other: &AbsState) {
        debug_assert_eq!(self.scopes.len(), other.scopes.len());
        for (s, o) in self.scopes.iter_mut().zip(&other.scopes) {
            for (name, slot) in s.iter_mut() {
                slot.join_with(&o[name]);
            }
        }
    }

    /// Pointwise widening of `self` toward `next`.
    fn widen_to(&mut self, next: &AbsState) {
        debug_assert_eq!(self.scopes.len(), next.scopes.len());
        for (s, n) in self.scopes.iter_mut().zip(&next.scopes) {
            for (name, slot) in s.iter_mut() {
                slot.widen_to(&n[name]);
            }
        }
    }
}

/// Accumulator for one native call site across abstract visits.
#[derive(Clone, Debug)]
enum SiteArgs {
    Unvisited,
    Const(Vec<i64>),
    Varying,
}

struct SiteAcc {
    name: String,
    stmt: StmtId,
    args: SiteArgs,
}

struct BranchAcc {
    reached: bool,
    taint: Taint,
    constancy: Option<Constancy>,
}

struct Analyzer<'p> {
    program: &'p Program,
    /// Statement identity → pre-order id (the AST is borrowed for the
    /// whole analysis, so node addresses are stable keys).
    stmt_of: HashMap<*const Stmt, StmtId>,
    /// Native call-site identity → site index.
    site_of: HashMap<*const Expr, usize>,
    sites: Vec<SiteAcc>,
    branches: Vec<BranchAcc>,
    reached: BTreeSet<StmtId>,
    stmt_count: usize,
    input_count: usize,
}

impl<'p> Analyzer<'p> {
    fn new(program: &'p Program) -> Analyzer<'p> {
        let ids = stmt_ids(program);
        let stmt_count = ids.len();
        let mut stmt_of = HashMap::with_capacity(stmt_count);
        let mut site_of = HashMap::new();
        let mut sites = Vec::new();
        for (id, stmt) in &ids {
            stmt_of.insert(*stmt as *const Stmt, *id);
            for_each_expr(stmt, &mut |e| {
                if let Expr::Call(name, _) = e {
                    if program.native(name).is_some() {
                        site_of.insert(e as *const Expr, sites.len());
                        sites.push(SiteAcc {
                            name: name.clone(),
                            stmt: *id,
                            args: SiteArgs::Unvisited,
                        });
                    }
                }
            });
        }
        let branches = (0..program.branch_count)
            .map(|_| BranchAcc {
                reached: false,
                taint: Taint::new(),
                constancy: None,
            })
            .collect();
        let input_count = program
            .params
            .iter()
            .map(|p| match p {
                Param::Scalar(_) => 1,
                Param::Array(_, len) => *len,
            })
            .sum();
        Analyzer {
            program,
            stmt_of,
            site_of,
            sites,
            branches,
            reached: BTreeSet::new(),
            stmt_count,
            input_count,
        }
    }

    /// Entry state: inputs bound to ⊤ values tainted by their flat
    /// indices (concolic flattening order).
    fn initial_state(&self) -> AbsState {
        let mut st = AbsState::new();
        let mut idx = 0;
        for p in &self.program.params {
            match p {
                Param::Scalar(name) => {
                    st.declare(name, Slot::Scalar(AbsVal::tainted([idx].into())));
                    idx += 1;
                }
                Param::Array(name, len) => {
                    st.declare(
                        name,
                        Slot::Array(AbsVal::tainted((idx..idx + len).collect())),
                    );
                    idx += len;
                }
            }
        }
        st
    }

    fn finish(self) -> AnalysisResult {
        let dead_stmts = (0..self.stmt_count as u32)
            .map(StmtId)
            .filter(|id| !self.reached.contains(id))
            .collect();
        let native_sites = self
            .sites
            .into_iter()
            .enumerate()
            .map(|(i, acc)| NativeSite {
                site: i,
                name: acc.name,
                stmt: acc.stmt,
                class: match acc.args {
                    SiteArgs::Unvisited => SiteClass::Dead,
                    SiteArgs::Const(vals) => SiteClass::ConstArgs(vals),
                    SiteArgs::Varying => SiteClass::InputDependent,
                },
            })
            .collect();
        let branches = self
            .branches
            .into_iter()
            .map(|acc| {
                if acc.reached {
                    BranchFact {
                        reached: true,
                        taint: acc.taint,
                        constancy: acc.constancy.unwrap_or(Constancy::Unknown),
                    }
                } else {
                    BranchFact::dead()
                }
            })
            .collect();
        AnalysisResult {
            branches,
            dead_stmts,
            stmt_count: self.stmt_count,
            native_sites,
            input_count: self.input_count,
        }
    }

    fn record_branch(&mut self, id: BranchId, taint: &Taint, truth: Constancy) {
        let acc = &mut self.branches[id.0 as usize];
        acc.reached = true;
        acc.taint.extend(taint.iter().copied());
        acc.constancy = Some(match acc.constancy {
            Some(prev) => prev.join(truth),
            None => truth,
        });
    }

    fn record_site(&mut self, expr: &Expr, args: &[AbsVal]) {
        let Some(&site) = self.site_of.get(&(expr as *const Expr)) else {
            return;
        };
        let tuple: Option<Vec<i64>> = args.iter().map(|a| a.itv.as_const()).collect();
        let acc = &mut self.sites[site];
        acc.args = match (std::mem::replace(&mut acc.args, SiteArgs::Varying), tuple) {
            (SiteArgs::Unvisited, Some(t)) => SiteArgs::Const(t),
            (SiteArgs::Const(prev), Some(t)) if prev == t => SiteArgs::Const(prev),
            _ => SiteArgs::Varying,
        };
    }

    /// Evaluates an expression: taint, interval, and (for booleans)
    /// three-valued truth. Visits native sites and inlines defined calls.
    fn eval(&mut self, st: &AbsState, e: &Expr) -> (AbsVal, Constancy) {
        match e {
            Expr::Int(v) => (AbsVal::constant(*v), Constancy::Unknown),
            Expr::Var(name) => match st.lookup(name) {
                Slot::Scalar(v) => (v.clone(), Constancy::Unknown),
                Slot::Array(_) => unreachable!("checker rules out array-as-scalar"),
            },
            Expr::Index(name, idx) => {
                let (iv, _) = self.eval(st, idx);
                let Slot::Array(summary) = st.lookup(name) else {
                    unreachable!("checker rules out indexing scalars");
                };
                let mut out = summary.clone();
                // The index choice itself may leak input dependence.
                out.taint.extend(iv.taint.iter().copied());
                (out, Constancy::Unknown)
            }
            Expr::Unary(UnOp::Neg, inner) => {
                let (v, _) = self.eval(st, inner);
                (
                    AbsVal {
                        taint: v.taint,
                        itv: v.itv.neg(),
                    },
                    Constancy::Unknown,
                )
            }
            Expr::Unary(UnOp::Not, inner) => {
                let (v, t) = self.eval(st, inner);
                (
                    AbsVal {
                        taint: v.taint,
                        itv: Interval::TOP,
                    },
                    t.not(),
                )
            }
            Expr::Binary(op, a, b) => {
                let (va, ta) = self.eval(st, a);
                let (vb, tb) = self.eval(st, b);
                let taint: Taint = va.taint.union(&vb.taint).copied().collect();
                if op.is_arith() {
                    let itv = match op {
                        BinOp::Add => va.itv.add(vb.itv),
                        BinOp::Sub => va.itv.sub(vb.itv),
                        BinOp::Mul => va.itv.mul(vb.itv),
                        BinOp::Div | BinOp::Mod => va.itv.div_like(div_kind_of(*op), vb.itv),
                        _ => unreachable!(),
                    };
                    (AbsVal { taint, itv }, Constancy::Unknown)
                } else if op.is_comparison() {
                    let truth = Interval::compare(rel_of(*op), va.itv, vb.itv);
                    (
                        AbsVal {
                            taint,
                            itv: Interval::TOP,
                        },
                        truth,
                    )
                } else {
                    let truth = match op {
                        BinOp::And => ta.and(tb),
                        BinOp::Or => ta.or(tb),
                        _ => unreachable!(),
                    };
                    (
                        AbsVal {
                            taint,
                            itv: Interval::TOP,
                        },
                        truth,
                    )
                }
            }
            Expr::Call(name, args) => {
                let vals: Vec<AbsVal> = args.iter().map(|a| self.eval(st, a).0).collect();
                if self.program.native(name).is_some() {
                    self.record_site(e, &vals);
                    // An unknown function of known arguments is an
                    // unknown *constant*: untainted only if no argument
                    // carries input taint.
                    let taint: Taint = vals.iter().flat_map(|v| v.taint.iter().copied()).collect();
                    (AbsVal::tainted(taint), Constancy::Unknown)
                } else {
                    let def = self
                        .program
                        .function(name)
                        .expect("checked program: callable resolved");
                    let mut out = self.eval_defined_call(def, vals.clone());
                    // The executor's summarize-calls mode represents this
                    // call as an uninterpreted application of the raw
                    // argument terms, so the static taint must cover the
                    // arguments even when the body ignores them.
                    for v in &vals {
                        out.taint.extend(v.taint.iter().copied());
                    }
                    (out, Constancy::Unknown)
                }
            }
        }
    }

    /// Inline abstract execution of a defined function body on abstract
    /// arguments (no recursion in `mini`, so the nesting is bounded).
    fn eval_defined_call(&mut self, def: &'p FuncDef, args: Vec<AbsVal>) -> AbsVal {
        let mut st = AbsState::new();
        for (p, v) in def.params.iter().zip(args) {
            st.declare(p, Slot::Scalar(v));
        }
        let mut ret: Option<AbsVal> = None;
        self.exec_block_no_scope(&mut st, &def.body, &mut ret);
        // `None`: every path stops inside the callee (program-level
        // error); the call never returns, so any value is sound here.
        ret.unwrap_or_else(|| AbsVal::constant(0))
    }

    /// Runs a block in a fresh scope.
    fn exec_block(
        &mut self,
        st: &mut AbsState,
        body: &'p [Stmt],
        ret: &mut Option<AbsVal>,
    ) -> Flow {
        st.scopes.push(HashMap::new());
        let flow = self.exec_block_no_scope(st, body, ret);
        st.scopes.pop();
        flow
    }

    /// Runs a block in the current scope (program/function top level).
    fn exec_block_no_scope(
        &mut self,
        st: &mut AbsState,
        body: &'p [Stmt],
        ret: &mut Option<AbsVal>,
    ) -> Flow {
        for s in body {
            if self.exec_stmt(st, s, ret) == Flow::Stop {
                // Following statements stay unmarked → dead.
                return Flow::Stop;
            }
        }
        Flow::Cont
    }

    fn exec_stmt(&mut self, st: &mut AbsState, s: &'p Stmt, ret: &mut Option<AbsVal>) -> Flow {
        let id = self.stmt_of[&(s as *const Stmt)];
        self.reached.insert(id);
        match s {
            Stmt::Let(name, e) => {
                let (v, _) = self.eval(st, e);
                st.declare(name, Slot::Scalar(v));
                Flow::Cont
            }
            Stmt::LetArray(name, _len) => {
                st.declare(name, Slot::Array(AbsVal::constant(0)));
                Flow::Cont
            }
            Stmt::Assign(name, e) => {
                let (v, _) = self.eval(st, e);
                *st.lookup_mut(name) = Slot::Scalar(v);
                Flow::Cont
            }
            Stmt::AssignIndex(name, idx, val) => {
                let (iv, _) = self.eval(st, idx);
                let (vv, _) = self.eval(st, val);
                let Slot::Array(summary) = st.lookup_mut(name) else {
                    unreachable!("checker rules out indexing scalars");
                };
                // Weak update: the summary absorbs the new element and
                // the taint of the written index.
                *summary = summary.join(&vv);
                summary.taint.extend(iv.taint.iter().copied());
                Flow::Cont
            }
            Stmt::If {
                id: bid,
                cond,
                then_branch,
                else_branch,
            } => {
                let (cv, truth) = self.eval(st, cond);
                self.record_branch(*bid, &cv.taint, truth);
                match truth {
                    Constancy::AlwaysTrue => self.exec_block(st, then_branch, ret),
                    Constancy::AlwaysFalse => self.exec_block(st, else_branch, ret),
                    Constancy::Unknown => {
                        let mut then_st = st.clone();
                        refine(&mut then_st, cond, true);
                        let then_flow = self.exec_block(&mut then_st, then_branch, ret);
                        let mut else_st = std::mem::replace(st, AbsState::new());
                        refine(&mut else_st, cond, false);
                        let else_flow = self.exec_block(&mut else_st, else_branch, ret);
                        match (then_flow, else_flow) {
                            (Flow::Cont, Flow::Cont) => {
                                then_st.join_with(&else_st);
                                *st = then_st;
                                Flow::Cont
                            }
                            (Flow::Cont, Flow::Stop) => {
                                *st = then_st;
                                Flow::Cont
                            }
                            (Flow::Stop, Flow::Cont) => {
                                *st = else_st;
                                Flow::Cont
                            }
                            (Flow::Stop, Flow::Stop) => Flow::Stop,
                        }
                    }
                }
            }
            Stmt::While {
                id: bid,
                cond,
                body,
            } => self.exec_while(st, *bid, cond, body, ret),
            Stmt::Error(_) | Stmt::Return => Flow::Stop,
            Stmt::ReturnValue(e) => {
                let (v, _) = self.eval(st, e);
                *ret = Some(match ret.take() {
                    Some(prev) => prev.join(&v),
                    None => v,
                });
                Flow::Stop
            }
        }
    }

    fn exec_while(
        &mut self,
        st: &mut AbsState,
        bid: BranchId,
        cond: &'p Expr,
        body: &'p [Stmt],
        ret: &mut Option<AbsVal>,
    ) -> Flow {
        /// Iterations before widening kicks in (small constant-bound
        /// loops stay precise).
        const WIDEN_AFTER: usize = 3;
        let mut head = st.clone();
        let mut iters = 0;
        loop {
            let (cv, truth) = self.eval(&head, cond);
            if iters == 0 && truth == Constancy::AlwaysFalse {
                // Body never entered.
                self.record_branch(bid, &cv.taint, truth);
                *st = head;
                return Flow::Cont;
            }
            let mut body_st = head.clone();
            refine(&mut body_st, cond, true);
            let flow = self.exec_block(&mut body_st, body, ret);
            let mut next = head.clone();
            if flow == Flow::Cont {
                next.join_with(&body_st);
            }
            iters += 1;
            if iters >= WIDEN_AFTER {
                let mut widened = head.clone();
                widened.widen_to(&next);
                next = widened;
            }
            if next == head {
                // Converged: the recorded facts use the fixpoint state.
                let (cv, truth) = self.eval(&head, cond);
                self.record_branch(bid, &cv.taint, truth);
                if truth == Constancy::AlwaysTrue {
                    // The loop can only be left via `error`/`return`
                    // inside the body: the fall-through edge is dead.
                    return Flow::Stop;
                }
                *st = head;
                refine(st, cond, false);
                return Flow::Cont;
            }
            head = next;
        }
    }
}

/// Narrows variable intervals in `st` under the assumption that `cond`
/// evaluates to `want`. Only ever shrinks intervals (and drops a
/// refinement entirely rather than produce an empty interval), so it is
/// sound for any state that satisfies the assumption.
fn refine(st: &mut AbsState, cond: &Expr, want: bool) {
    match cond {
        Expr::Unary(UnOp::Not, inner) => refine(st, inner, !want),
        Expr::Binary(BinOp::And, a, b) if want => {
            refine(st, a, true);
            refine(st, b, true);
        }
        Expr::Binary(BinOp::Or, a, b) if !want => {
            refine(st, a, false);
            refine(st, b, false);
        }
        Expr::Binary(op, a, b) if op.is_comparison() => {
            let op = if want {
                *op
            } else {
                match op {
                    BinOp::Eq => BinOp::Ne,
                    BinOp::Ne => BinOp::Eq,
                    BinOp::Lt => BinOp::Ge,
                    BinOp::Le => BinOp::Gt,
                    BinOp::Gt => BinOp::Le,
                    BinOp::Ge => BinOp::Lt,
                    _ => unreachable!(),
                }
            };
            refine_cmp(st, op, a, b);
        }
        _ => {}
    }
}

/// Interval of an expression in `st` without visiting call sites — used
/// only to bound the *other* side of a comparison during refinement.
fn quick_itv(st: &AbsState, e: &Expr) -> Interval {
    match e {
        Expr::Int(v) => Interval::constant(*v),
        Expr::Var(name) => match st.lookup(name) {
            Slot::Scalar(v) => v.itv,
            Slot::Array(_) => Interval::TOP,
        },
        Expr::Unary(UnOp::Neg, inner) => quick_itv(st, inner).neg(),
        Expr::Binary(BinOp::Add, a, b) => quick_itv(st, a).add(quick_itv(st, b)),
        Expr::Binary(BinOp::Sub, a, b) => quick_itv(st, a).sub(quick_itv(st, b)),
        _ => Interval::TOP,
    }
}

/// Applies `lhs op rhs` (assumed true) to variable operands.
fn refine_cmp(st: &mut AbsState, op: BinOp, lhs: &Expr, rhs: &Expr) {
    if let Expr::Var(name) = lhs {
        let bound = quick_itv(st, rhs);
        refine_var(st, name, op, bound);
    }
    if let Expr::Var(name) = rhs {
        let flipped = match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other, // Eq/Ne are symmetric
        };
        let bound = quick_itv(st, lhs);
        refine_var(st, name, flipped, bound);
    }
}

/// Narrows `name` assuming `name op bound` holds. The strict-comparison
/// tightening (`name < bound` ⇒ `name ≤ hi(bound) − 1`) lives in the
/// shared [`Interval::narrow`], which the solver's abstract backend uses
/// on the same facts.
fn refine_var(st: &mut AbsState, name: &str, op: BinOp, bound: Interval) {
    if !op.is_comparison() {
        return;
    }
    let Slot::Scalar(v) = st.lookup_mut(name) else {
        return;
    };
    if let Some(n) = Interval::narrow(rel_of(op), bound) {
        if let Some(refined) = v.itv.intersect(n) {
            v.itv = refined;
        }
    }
}

/// Visits every expression of a statement (not descending into nested
/// statements), pre-order, left-to-right.
fn for_each_expr<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    fn expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
        f(e);
        match e {
            Expr::Int(_) | Expr::Var(_) => {}
            Expr::Index(_, i) => expr(i, f),
            Expr::Unary(_, inner) => expr(inner, f),
            Expr::Binary(_, a, b) => {
                expr(a, f);
                expr(b, f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    expr(a, f);
                }
            }
        }
    }
    match s {
        Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::ReturnValue(e) => expr(e, f),
        Stmt::AssignIndex(_, i, v) => {
            expr(i, f);
            expr(v, f);
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => expr(cond, f),
        Stmt::LetArray(..) | Stmt::Error(_) | Stmt::Return => {}
    }
}
