//! Search reports: what a test-generation campaign executed, covered,
//! and found.

use crate::config::Technique;
use hotg_lang::{BranchId, Outcome};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a test input was executed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// The campaign's first input.
    Initial,
    /// A seed-corpus execution (well-formed inputs provided up front).
    Seed,
    /// Random baseline input.
    Random,
    /// Satisfying assignment of an alternate path constraint (DART).
    Solved {
        /// Branch site being flipped.
        target: BranchId,
    },
    /// Interpreted strategy from a validity proof (higher-order).
    Strategy {
        /// Branch site being flipped.
        target: BranchId,
        /// Rendered strategy (human-readable).
        strategy: String,
    },
    /// Intermediate probe run to collect missing samples (multi-step).
    Probe {
        /// Branch site the pending strategy is for.
        target: BranchId,
    },
}

/// Record of one program execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunRecord {
    /// Flat input values.
    pub inputs: Vec<i64>,
    /// Execution outcome.
    pub outcome: Outcome,
    /// Why this input was executed.
    pub origin: Origin,
    /// For generated tests with an expected path: did the run diverge?
    pub diverged: Option<bool>,
    /// Branch directions taken.
    pub path: Vec<(BranchId, bool)>,
}

/// Summary of one campaign.
#[derive(Clone, Debug)]
pub struct Report {
    /// Technique used.
    pub technique: Technique,
    /// Program name.
    pub program: String,
    /// Every execution, in order.
    pub runs: Vec<RunRecord>,
    /// First run index that triggered each error code.
    pub errors: BTreeMap<i64, usize>,
    /// Covered `(site, direction)` pairs.
    pub coverage: BTreeSet<(BranchId, bool)>,
    /// Number of diverging generated tests (§3.2).
    pub divergences: usize,
    /// Number of probe executions (multi-step, §5.3).
    pub probes: usize,
    /// Number of solver/validity queries issued.
    pub solver_calls: usize,
    /// Search targets proved infeasible/invalid (no test generated).
    pub rejected_targets: usize,
    /// Targets dropped by the static oracle *before* any solver or
    /// validity query (`DriverConfig::static_pruning`).
    pub targets_pruned_static: usize,
    /// Native call sites with statically-constant arguments whose
    /// input/output pair was pre-sampled into the initial `IOF` table.
    pub presampled_sites: usize,
    /// Total branch sites of the program (for coverage ratios).
    pub branch_sites: u32,
    /// Solver-query cache hits (SMT results plus memoized validity
    /// outcomes). Unlike every other field, the hit/miss split may differ
    /// between thread counts: racing workers can each miss a key one of
    /// them is about to fill. The cached values themselves are pure
    /// functions of the key, so campaign *results* never depend on it.
    pub cache_hits: u64,
    /// Solver-query cache misses (lookups that ran the solver).
    pub cache_misses: u64,
    /// Number of search targets in each generation of the directed
    /// search, in order. The width of a generation bounds how much
    /// target-level parallelism the worker pool (`DriverConfig::threads`)
    /// can exploit; deterministic, so identical across thread counts.
    /// Empty for the random baseline.
    pub generation_widths: Vec<usize>,
    /// Wall-clock duration of the campaign.
    pub elapsed: std::time::Duration,
}

impl Report {
    /// Number of executions (tests + probes).
    pub fn total_runs(&self) -> usize {
        self.runs.len()
    }

    /// `true` if the error code was triggered.
    pub fn found_error(&self, code: i64) -> bool {
        self.errors.contains_key(&code)
    }

    /// Run index of the first hit of `code`.
    pub fn first_hit(&self, code: i64) -> Option<usize> {
        self.errors.get(&code).copied()
    }

    /// Number of covered `(site, direction)` pairs.
    pub fn covered_directions(&self) -> usize {
        self.coverage.len()
    }

    /// Coverage ratio over all `2 × branch_sites` directions.
    pub fn coverage_ratio(&self) -> f64 {
        if self.branch_sites == 0 {
            return 1.0;
        }
        self.coverage.len() as f64 / (2.0 * self.branch_sites as f64)
    }

    /// Cumulative coverage after each run: element `i` is the number of
    /// distinct `(site, direction)` pairs covered by runs `0..=i`. The
    /// series behind coverage-over-iterations figures.
    pub fn coverage_curve(&self) -> Vec<usize> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::with_capacity(self.runs.len());
        for r in &self.runs {
            for &(id, dir) in &r.path {
                seen.insert((id, dir));
            }
            out.push(seen.len());
        }
        out
    }

    /// Cache hits as a fraction of all cached solver lookups (`0.0` when
    /// no lookups were made).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Widest generation of the directed search — the best single-moment
    /// parallelism available to the worker pool. `0` when the search
    /// never enqueued a target (e.g. the random baseline).
    pub fn max_generation_width(&self) -> usize {
        self.generation_widths.iter().copied().max().unwrap_or(0)
    }

    /// Cumulative distinct error codes after each run.
    pub fn error_curve(&self) -> Vec<usize> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::with_capacity(self.runs.len());
        for r in &self.runs {
            if let Outcome::Error(code) = r.outcome {
                seen.insert(code);
            }
            out.push(seen.len());
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {}: {} runs ({} probes), {}/{} directions covered, \
             errors {:?}, {} divergences, {} rejected targets, {} solver calls, \
             {} pruned statically, {} pre-sampled sites, \
             cache {}/{} hits",
            self.technique,
            self.program,
            self.total_runs(),
            self.probes,
            self.covered_directions(),
            2 * self.branch_sites,
            self.errors.keys().collect::<Vec<_>>(),
            self.divergences,
            self.rejected_targets,
            self.solver_calls,
            self.targets_pruned_static,
            self.presampled_sites,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )
    }
}

/// Renders a fixed-width comparison table of several reports (one row per
/// technique), as printed by the experiment binaries.
pub fn comparison_table(reports: &[Report]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>5} {:>7} {:>9} {:>7} {:>9} {:>8} {:>7} {:>7} {:>9} {:>8} {:>9}  {}\n",
        "technique",
        "runs",
        "probes",
        "coverage",
        "diverg",
        "rejected",
        "solver",
        "pruned",
        "presmp",
        "cache",
        "hit%",
        "time",
        "errors"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<18} {:>5} {:>7} {:>6}/{:<2} {:>7} {:>9} {:>8} {:>7} {:>7} {:>9} {:>7.1}% {:>7}ms  {:?}\n",
            r.technique.label(),
            r.total_runs(),
            r.probes,
            r.covered_directions(),
            2 * r.branch_sites,
            r.divergences,
            r.rejected_targets,
            r.solver_calls,
            r.targets_pruned_static,
            r.presampled_sites,
            format!("{}/{}", r.cache_hits, r.cache_hits + r.cache_misses),
            100.0 * r.cache_hit_rate(),
            r.elapsed.as_millis(),
            r.errors.keys().collect::<Vec<_>>(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> Report {
        Report {
            technique: Technique::HigherOrder,
            program: "t".into(),
            runs: vec![RunRecord {
                inputs: vec![1],
                outcome: Outcome::Error(1),
                origin: Origin::Initial,
                diverged: None,
                path: vec![(BranchId(0), true)],
            }],
            errors: BTreeMap::from([(1i64, 0usize)]),
            coverage: BTreeSet::from([(BranchId(0), true)]),
            divergences: 0,
            probes: 0,
            solver_calls: 2,
            rejected_targets: 1,
            targets_pruned_static: 0,
            presampled_sites: 0,
            branch_sites: 1,
            cache_hits: 3,
            cache_misses: 1,
            generation_widths: vec![1],
            elapsed: std::time::Duration::from_millis(1),
        }
    }

    #[test]
    fn accessors() {
        let r = dummy();
        assert_eq!(r.total_runs(), 1);
        assert!(r.found_error(1));
        assert!(!r.found_error(2));
        assert_eq!(r.first_hit(1), Some(0));
        assert_eq!(r.covered_directions(), 1);
        assert_eq!(r.max_generation_width(), 1);
        assert!((r.coverage_ratio() - 0.5).abs() < 1e-9);
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-9);
        let mut empty = r.clone();
        empty.cache_hits = 0;
        empty.cache_misses = 0;
        assert_eq!(empty.cache_hit_rate(), 0.0);
    }

    #[test]
    fn display_and_table() {
        let r = dummy();
        let s = r.to_string();
        assert!(s.contains("higher-order"));
        let t = comparison_table(&[r]);
        assert!(t.contains("technique"));
        assert!(t.contains("higher-order"));
    }

    #[test]
    fn curves_are_monotone() {
        let mut r = dummy();
        r.runs.push(RunRecord {
            inputs: vec![2],
            outcome: Outcome::Returned,
            origin: Origin::Random,
            diverged: None,
            path: vec![(BranchId(0), false)],
        });
        assert_eq!(r.coverage_curve(), vec![1, 2]);
        assert_eq!(r.error_curve(), vec![1, 1]);
    }

    #[test]
    fn zero_sites_ratio() {
        let mut r = dummy();
        r.branch_sites = 0;
        assert_eq!(r.coverage_ratio(), 1.0);
    }
}
