//! Machine-readable campaign benchmark: runs the full corpus × technique
//! matrix, re-checks every paper claim, measures the parallel-search
//! speedup, and writes everything as JSON (`BENCH_campaign.json` at the
//! repo root by default).
//!
//! ```text
//! campaign-bench [--reduced] [--chaos] [--technique NAME] [--out PATH] [--threads N] [--shards N]
//! ```
//!
//! * `--reduced` shrinks the corpus and run budget for CI smoke runs.
//! * `--chaos` additionally runs every selected program under a
//!   fault-injection plan and records the fault accounting.
//! * `--technique NAME` restricts the matrix to one technique.
//! * `--out PATH` overrides the output path.
//! * `--threads N` overrides the worker-pool size of the parallel
//!   measurement (default: 4).
//! * `--shards N` overrides the shard count of the sharded-campaign
//!   parity measurement (default: 2).
//!
//! Every campaign is consumed through its [`CampaignEvent`] stream: the
//! benchmark folds the stream back into a report and cross-checks the
//! fold against the driver's own [`Report`], exiting non-zero on any
//! drift — so the CI smoke run doubles as an end-to-end check that the
//! event stream carries the campaign's complete accounting.
//!
//! The JSON schema is documented in `EXPERIMENTS.md` (section
//! "Campaign benchmark").
//!
//! [`CampaignEvent`]: hotg_core::CampaignEvent

use hotg_bench::paper_examples;
use hotg_concolic::{
    execute_compiled_profiled, execute_opts, ConcolicContext, ExecProfile, SymbolicMode,
};
use hotg_core::{
    fold_report, CampaignEvent, Driver, DriverConfig, EventLog, FaultPlan, FsyncPolicy, Report,
    Technique, TraceConfig,
};
use hotg_lang::{compile, corpus, InputVector};
use hotg_logic::{Formula, LogicArena};
use hotg_solver::{SmtConfig, SmtSession, SmtSolver};
use std::fmt::Write as _;
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Programs exercised in `--reduced` mode: the paper's headline examples
/// plus one EUF program, enough to exercise every driver path cheaply.
const REDUCED_PROGRAMS: [&str; 4] = ["obscure", "foo", "bar", "euf_eq"];

/// Programs whose campaign query streams feed the solver-throughput
/// replay: `fanout` produces wide generations of sibling flip queries,
/// `budget_cliff` stresses the per-node solver budgets.
const SOLVER_BENCH_PROGRAMS: [&str; 2] = ["fanout", "budget_cliff"];

/// Replay volume floor: the recorded stream is replayed in whole-stream
/// rounds until at least this many queries ran, so both legs time enough
/// work to be stable on CI hosts — and so the session leg's cross-round
/// cache reuse (a generation re-posing equivalent queries) is exercised.
const SOLVER_BENCH_MIN_QUERIES: usize = 150;

/// Pre-solver acceptance floor: across the whole corpus' DART-sound
/// query streams, at least this fraction of the distinct
/// (cache-missing) queries must be answered by the abstract backend
/// without any DPLL(T) work.
const BACKEND_SHORT_CIRCUIT_FLOOR: f64 = 0.2;

/// Replay volume floor per engine leg: each leg re-runs its replay
/// vectors in whole-corpus rounds until at least this many runs were
/// timed, so the measurement is warm and stable on CI hosts.
const EXEC_BENCH_MIN_RUNS: usize = 4096;

/// Throughput the compiled VMs must clear over the tree-walking
/// reference interpreters, as the combined (all bench programs,
/// concrete + concolic legs) wall-time ratio. Gated on the combined
/// ratio rather than per row — per-program ratios vary with how much
/// of a run is shared symbolic-side work — with per-row speedups
/// reported alongside.
const EXEC_SPEEDUP_FLOOR: f64 = 2.0;

struct Args {
    reduced: bool,
    chaos: bool,
    technique: Option<Technique>,
    out: String,
    threads: usize,
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        reduced: false,
        chaos: false,
        technique: None,
        out: "BENCH_campaign.json".to_string(),
        threads: 4,
        shards: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reduced" => args.reduced = true,
            "--chaos" => args.chaos = true,
            "--technique" => {
                let name = it
                    .next()
                    .unwrap_or_else(|| usage("--technique needs a name"));
                args.technique = Some(Technique::from_str(&name).unwrap_or_else(|e| usage(&e)));
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| usage("--out needs a path"));
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--shards" => {
                args.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage("--shards needs a positive number"));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!("campaign-bench: {msg}");
    eprintln!(
        "usage: campaign-bench [--reduced] [--chaos] [--technique NAME] [--out PATH] \
         [--threads N] [--shards N]"
    );
    std::process::exit(2);
}

fn config(width: usize, max_runs: usize, threads: usize) -> DriverConfig {
    DriverConfig {
        max_runs,
        threads,
        ..DriverConfig::with_initial(vec![0; width])
    }
}

/// Runs one campaign while capturing its event stream, folds the stream
/// back into a report, and diffs the fold against the driver's report.
/// Returns the report, the event count, and any fold mismatches.
fn run_via_events(driver: &Driver<'_>, technique: Technique) -> (Report, usize, Vec<String>) {
    let mut log = EventLog::new();
    let report = driver.run_with_sink(technique, &mut log);
    let folded = fold_report(log.events());
    let mismatches = fold_mismatches(&report, &folded);
    (report, log.events().len(), mismatches)
}

/// Field-by-field diff between a driver report and the event-stream
/// fold. Everything except wall clock must agree.
fn fold_mismatches(report: &Report, folded: &Report) -> Vec<String> {
    let mut out = Vec::new();
    let mut diff = |field: &str, got: String, want: String| {
        if got != want {
            out.push(format!("{field}: report {want} vs event fold {got}"));
        }
    };
    diff(
        "technique",
        folded.technique.to_string(),
        report.technique.to_string(),
    );
    diff("program", folded.program.clone(), report.program.clone());
    diff(
        "runs",
        format!("{:?}", folded.runs),
        format!("{:?}", report.runs),
    );
    diff(
        "errors",
        format!("{:?}", folded.errors),
        format!("{:?}", report.errors),
    );
    diff(
        "coverage",
        format!("{:?}", folded.coverage),
        format!("{:?}", report.coverage),
    );
    diff(
        "counters",
        format!(
            "{:?}",
            (
                folded.divergences,
                folded.probes,
                folded.solver_calls,
                folded.rejected_targets,
                folded.solver_errors,
                folded.budget_escalations,
                folded.targets_degraded,
                folded.targets_faulted,
                folded.targets_pruned_static,
                folded.presampled_sites,
                folded.branch_sites,
                folded.fuel_exhausted_runs,
            )
        ),
        format!(
            "{:?}",
            (
                report.divergences,
                report.probes,
                report.solver_calls,
                report.rejected_targets,
                report.solver_errors,
                report.budget_escalations,
                report.targets_degraded,
                report.targets_faulted,
                report.targets_pruned_static,
                report.presampled_sites,
                report.branch_sites,
                report.fuel_exhausted_runs,
            )
        ),
    );
    diff(
        "generation_widths",
        format!("{:?}", folded.generation_widths),
        format!("{:?}", report.generation_widths),
    );
    diff(
        "cache",
        format!("{}/{}", folded.cache_hits, folded.cache_misses),
        format!("{}/{}", report.cache_hits, report.cache_misses),
    );
    diff(
        "fault_kinds",
        format!("{:?}", folded.fault_kinds),
        format!("{:?}", report.fault_kinds),
    );
    diff(
        "degradations",
        format!("{:?}", folded.degradations),
        format!("{:?}", report.degradations),
    );
    diff(
        "faults_injected",
        format!("{:?}", folded.faults_injected),
        format!("{:?}", report.faults_injected),
    );
    diff(
        "campaign_timed_out",
        folded.campaign_timed_out.to_string(),
        report.campaign_timed_out.to_string(),
    );
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn row_json(program: &str, r: &Report, wall_ms: f64, events: usize) -> String {
    let errors: Vec<String> = r.errors.keys().map(|c| c.to_string()).collect();
    let first_error = r
        .errors
        .values()
        .min()
        .map_or("null".to_string(), |i| i.to_string());
    format!(
        "{{\"program\": {}, \"technique\": {}, \"wall_ms\": {:.3}, \
         \"runs\": {}, \"probes\": {}, \"solver_calls\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \
         \"covered_directions\": {}, \"branch_directions\": {}, \
         \"max_generation_width\": {}, \"events\": {}, \
         \"first_error_run\": {}, \"errors\": [{}]}}",
        json_str(program),
        json_str(r.technique.name()),
        wall_ms,
        r.total_runs(),
        r.probes,
        r.solver_calls,
        r.cache_hits,
        r.cache_misses,
        r.cache_hit_rate(),
        r.covered_directions(),
        2 * r.branch_sites,
        r.max_generation_width(),
        events,
        first_error,
        errors.join(", "),
    )
}

fn chaos_row_json(program: &str, seed: u64, r: &Report, wall_ms: f64) -> String {
    let inj = r.faults_injected;
    format!(
        "{{\"program\": {}, \"technique\": {}, \"seed\": {}, \"wall_ms\": {:.3}, \
         \"runs\": {}, \"injected\": {{\"solver_unknowns\": {}, \"solver_errs\": {}, \
         \"interp_faults\": {}, \"probe_failures\": {}, \"worker_panics\": {}}}, \
         \"solver_errors\": {}, \"targets_degraded\": {}, \"targets_faulted\": {}, \
         \"divergences\": {}}}",
        json_str(program),
        json_str(r.technique.name()),
        seed,
        wall_ms,
        r.total_runs(),
        inj.solver_unknowns,
        inj.solver_errs,
        inj.interp_faults,
        inj.probe_failures,
        inj.worker_panics,
        r.solver_errors,
        r.targets_degraded,
        r.targets_faulted,
        r.divergences,
    )
}

/// One program's solver-throughput replay measurement.
struct SolverBenchRow {
    program: &'static str,
    /// Queries recorded from the capture campaign.
    recorded: usize,
    /// Whole-stream replay rounds.
    rounds: usize,
    /// Total replayed queries per leg (`recorded * rounds`).
    queries: usize,
    baseline_qps: f64,
    session_qps: f64,
    speedup: f64,
    intern_hits: u64,
    clauses_reused: u64,
    cache_hits: u64,
    pass: bool,
}

/// Captures the solver-query stream of one DART-sound campaign on the
/// named corpus program (fixed 40-run budget, single-threaded), via the
/// driver's [`DriverConfig::query_log`] tap.
fn capture_query_stream(name: &str) -> Vec<Formula> {
    let (_, ctor) = corpus::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("corpus program `{name}` missing"));
    let (program, natives) = ctor();
    let width = program.input_width();
    let log = Arc::new(Mutex::new(Vec::new()));
    let cfg = DriverConfig {
        query_log: Some(Arc::clone(&log)),
        ..config(width, 40, 1)
    };
    let driver = Driver::new(&program, &natives, cfg);
    let _ = driver.run(Technique::DartSound);
    let stream = log.lock().expect("query log").clone();
    stream
}

/// Replays a captured query stream through both legs: a fresh solver
/// per query (per-query encode-and-search cost with no reuse of any
/// kind — what every cache-missing query cost before the session
/// machinery existed) versus one arena-backed solver with a single
/// incremental [`SmtSession`] carrying the query cache, the memoized
/// normalization arena, and CDCL-learned clauses across the stream.
fn solver_replay(program: &'static str, stream: &[Formula]) -> SolverBenchRow {
    let recorded = stream.len();
    let rounds = if recorded == 0 {
        0
    } else {
        SOLVER_BENCH_MIN_QUERIES.div_ceil(recorded)
    };
    let queries = recorded * rounds;
    let start = Instant::now();
    for _ in 0..rounds {
        for q in stream {
            let _ = SmtSolver::new().check(q);
        }
    }
    let baseline_s = start.elapsed().as_secs_f64();
    let solver = SmtSolver::with_config(SmtConfig {
        incremental: true,
        ..SmtConfig::new()
    })
    .with_arena(Arc::new(LogicArena::new()));
    let session = SmtSession::for_solver(&solver);
    let start = Instant::now();
    for _ in 0..rounds {
        for q in stream {
            let _ = session.check_with(&solver, q);
        }
    }
    let session_s = start.elapsed().as_secs_f64();
    let stats = session.stats();
    let baseline_qps = if baseline_s > 0.0 {
        queries as f64 / baseline_s
    } else {
        0.0
    };
    let session_qps = if session_s > 0.0 {
        queries as f64 / session_s
    } else {
        0.0
    };
    let speedup = if baseline_qps > 0.0 {
        session_qps / baseline_qps
    } else {
        0.0
    };
    SolverBenchRow {
        program,
        recorded,
        rounds,
        queries,
        baseline_qps,
        session_qps,
        speedup,
        intern_hits: stats.intern_hits,
        clauses_reused: stats.clauses_reused,
        cache_hits: stats.hits,
        pass: queries > 0 && speedup >= 3.0,
    }
}

fn solver_row_json(r: &SolverBenchRow) -> String {
    format!(
        "{{\"program\": {}, \"recorded_queries\": {}, \"rounds\": {}, \
         \"queries\": {}, \"baseline_qps\": {:.1}, \"session_qps\": {:.1}, \
         \"speedup\": {:.3}, \"intern_hits\": {}, \"clauses_reused\": {}, \
         \"cache_hits\": {}, \"pass\": {}}}",
        json_str(r.program),
        r.recorded,
        r.rounds,
        r.queries,
        r.baseline_qps,
        r.session_qps,
        r.speedup,
        r.intern_hits,
        r.clauses_reused,
        r.cache_hits,
        r.pass,
    )
}

/// One query class' pre-solver cascade measurement.
struct BackendBenchRow {
    program: &'static str,
    /// Backend name (`"abstract"`).
    backend: &'static str,
    /// Distinct (cache-missing) queries the backend was consulted on.
    queries: u64,
    unsat_short_circuits: u64,
    valid_short_circuits: u64,
    sat_short_circuits: u64,
    /// Fraction of backend queries answered without DPLL(T).
    short_circuit_rate: f64,
}

/// Replays a captured query stream through a fresh cascade-enabled
/// solver and reads the backend counters: how many of the campaign's
/// distinct queries the abstract layer decides before any DPLL(T) work —
/// refutations (`unsat_short_circuits`) plus forced-model answers
/// (`sat_short_circuits`). The model-returning `check` path never asks
/// for validity, so `valid_short_circuits` stays 0 here; it is reported
/// for completeness since validity-checker replays would populate it.
fn backend_replay(program: &'static str, stream: &[Formula]) -> BackendBenchRow {
    let solver = SmtSolver::new();
    for q in stream {
        let _ = solver.check(q);
    }
    let stats = solver
        .backend_stats()
        .expect("pre-solving is on in the default configuration");
    let short_circuit_rate = if stats.queries > 0 {
        stats.short_circuits() as f64 / stats.queries as f64
    } else {
        0.0
    };
    BackendBenchRow {
        program,
        backend: stats.backend,
        queries: stats.queries,
        unsat_short_circuits: stats.unsat_short_circuits,
        valid_short_circuits: stats.valid_short_circuits,
        sat_short_circuits: stats.sat_short_circuits,
        short_circuit_rate,
    }
}

fn backend_row_json(r: &BackendBenchRow) -> String {
    format!(
        "{{\"program\": {}, \"backend\": {}, \"queries\": {}, \
         \"unsat_short_circuits\": {}, \"valid_short_circuits\": {}, \
         \"sat_short_circuits\": {}, \"short_circuit_rate\": {:.4}}}",
        json_str(r.program),
        json_str(r.backend),
        r.queries,
        r.unsat_short_circuits,
        r.valid_short_circuits,
        r.sat_short_circuits,
        r.short_circuit_rate,
    )
}

/// One program's execution-throughput replay measurement: the same
/// replay corpus run by the tree-walking interpreters and by the
/// bytecode VMs, concrete and concolic legs timed separately.
struct ExecBenchRow {
    program: &'static str,
    /// Replay input vectors per round.
    vectors: usize,
    /// Whole-corpus replay rounds.
    rounds: usize,
    /// Timed runs per leg (`vectors * rounds`); each engine runs two
    /// legs (concrete + concolic), so it executes `2 * runs` in total.
    runs: usize,
    concrete_speedup: f64,
    concolic_speedup: f64,
    /// Combined runs/second, tree-walker legs.
    tree_rps: f64,
    /// Combined runs/second, VM legs.
    vm_rps: f64,
    /// Combined wall-time ratio (`vm_rps / tree_rps`).
    speedup: f64,
    /// Bytecode instructions retired across both VM legs.
    instructions: u64,
    /// Combined tree-walker wall time (for the section-level gate).
    tree_s: f64,
    /// Combined VM wall time (for the section-level gate).
    vm_s: f64,
}

/// Deterministic replay vectors in the corpus' interesting band
/// (±1000): the bench must measure the same work on every host, so no
/// entropy source — a splitmix64 stream keyed only by position.
fn exec_inputs(width: usize, n: usize) -> Vec<InputVector> {
    let mut state = 0u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| InputVector::new((0..width).map(|_| (next() % 2001) as i64 - 1000).collect()))
        .collect()
}

/// Times the tree-walking interpreters against the bytecode VMs on one
/// corpus program: compile once, then replay the same deterministic
/// input vectors through all four legs — concrete tree vs concrete VM,
/// and concolic tree vs concolic shadow VM (Uninterpreted mode, the
/// higher-order technique's profile). Both engine families are
/// bit-identical by construction (the parity and differential suites
/// pin that), so the replay measures pure dispatch throughput.
fn exec_replay(
    name: &'static str,
    program: &hotg_lang::Program,
    natives: &hotg_lang::NativeRegistry,
) -> ExecBenchRow {
    let cp = compile(program, natives).expect("bench programs compile");
    let ctx = ConcolicContext::new(program);
    let vectors = exec_inputs(program.input_width(), 16);
    let fuel = 50_000;
    let mode = SymbolicMode::Uninterpreted;
    let profile = ExecProfile::new(mode);
    let rounds = EXEC_BENCH_MIN_RUNS.div_ceil(vectors.len());
    let runs = vectors.len() * rounds;

    // Each leg is timed three times and scored by its fastest pass:
    // replays are deterministic, so the minimum is the least-disturbed
    // estimate of the leg's true cost on a shared CI host (slower
    // passes only ever add scheduler noise). The first pass doubles as
    // warmup for the scratch pools and the allocator.
    let time_leg = |f: &mut dyn FnMut()| -> f64 {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let tree_concrete_s = time_leg(&mut || {
        for _ in 0..rounds {
            for iv in &vectors {
                let _ = hotg_lang::run(program, natives, iv, fuel);
            }
        }
    });
    let vm_concrete_s = time_leg(&mut || {
        for _ in 0..rounds {
            for iv in &vectors {
                let _ = hotg_lang::run_compiled_counted(&cp, iv, fuel);
            }
        }
    });
    let tree_concolic_s = time_leg(&mut || {
        for _ in 0..rounds {
            for iv in &vectors {
                let _ = execute_opts(&ctx, program, natives, iv, mode, fuel, false);
            }
        }
    });
    let vm_concolic_s = time_leg(&mut || {
        for _ in 0..rounds {
            for iv in &vectors {
                let _ = execute_compiled_profiled(&ctx, &cp, iv, fuel, profile);
            }
        }
    });
    // Retired-instruction accounting, outside the timed passes (the
    // replay is deterministic, so one pass per vector set suffices).
    let instructions: u64 = vectors
        .iter()
        .map(|iv| {
            let (_, _, n) = hotg_lang::run_compiled_counted(&cp, iv, fuel);
            n + execute_compiled_profiled(&ctx, &cp, iv, fuel, profile).instructions
        })
        .sum::<u64>()
        * rounds as u64;

    let ratio = |tree: f64, vm: f64| if vm > 0.0 { tree / vm } else { 0.0 };
    let tree_s = tree_concrete_s + tree_concolic_s;
    let vm_s = vm_concrete_s + vm_concolic_s;
    let rps = |s: f64| if s > 0.0 { 2.0 * runs as f64 / s } else { 0.0 };
    let speedup = ratio(tree_s, vm_s);
    ExecBenchRow {
        program: name,
        vectors: vectors.len(),
        rounds,
        runs,
        concrete_speedup: ratio(tree_concrete_s, vm_concrete_s),
        concolic_speedup: ratio(tree_concolic_s, vm_concolic_s),
        tree_rps: rps(tree_s),
        vm_rps: rps(vm_s),
        speedup,
        instructions,
        tree_s,
        vm_s,
    }
}

fn exec_row_json(r: &ExecBenchRow) -> String {
    format!(
        "{{\"program\": {}, \"vectors\": {}, \"rounds\": {}, \"runs\": {}, \
         \"concrete_speedup\": {:.3}, \"concolic_speedup\": {:.3}, \
         \"tree_rps\": {:.1}, \"vm_rps\": {:.1}, \"speedup\": {:.3}, \
         \"instructions\": {}}}",
        json_str(r.program),
        r.vectors,
        r.rounds,
        r.runs,
        r.concrete_speedup,
        r.concolic_speedup,
        r.tree_rps,
        r.vm_rps,
        r.speedup,
        r.instructions,
    )
}

/// Trace-overhead ceiling for the default (`every-generation`) fsync
/// row of the resume section: writing the durable trace must cost no
/// more than this much extra campaign wall time.
const RESUME_OVERHEAD_CEILING_PCT: f64 = 5.0;

/// One fsync policy's trace-overhead measurement.
struct ResumeBenchRow {
    fsync: FsyncPolicy,
    wall_ms: f64,
    overhead_pct: f64,
    trace_bytes: u64,
    frames: usize,
}

/// Crash-recovery measurement: the `every-generation` trace truncated
/// at ~60% of its frames, resumed, and checked for report parity.
struct ResumeRecovery {
    crash_frame: usize,
    frames: usize,
    recovery_ms: f64,
    events_replayed: usize,
    parity: bool,
}

/// Deterministic rendering of the result-pinned report fields — the
/// bench-side equivalent of the parity suite's canonical form (elapsed,
/// the cache hit/miss split, and the trace-I/O telemetry excluded).
fn report_fingerprint(r: &Report) -> String {
    format!(
        "{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.technique,
        r.program,
        r.runs,
        r.errors,
        r.coverage,
        r.generation_widths,
        r.degradations,
        r.faults_injected,
        (
            r.divergences,
            r.probes,
            r.solver_calls,
            r.rejected_targets,
            r.targets_pruned_static,
            r.presampled_sites,
            r.branch_sites,
        ),
        (
            r.solver_errors,
            r.targets_degraded,
            r.targets_faulted,
            r.budget_escalations,
            r.fuel_exhausted_runs,
            r.campaign_timed_out,
        ),
    )
}

/// Frame count of a durable trace file (header frame excluded), walking
/// the length prefixes.
fn trace_frames(path: &std::path::Path) -> usize {
    let data = std::fs::read(path).unwrap_or_default();
    let mut off = 8usize;
    let mut frames = 0usize;
    while off + 8 <= data.len() {
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        if off + 8 + len > data.len() {
            break;
        }
        off += 8 + len;
        frames += 1;
    }
    frames.saturating_sub(1)
}

/// Byte offset just past event frame `k` (frame 0 is the header).
fn trace_cut_at(path: &std::path::Path, k: usize) -> u64 {
    let data = std::fs::read(path).expect("read trace");
    let mut off = 8usize;
    let mut frame = 0usize;
    while off + 8 <= data.len() {
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        if frame == k {
            return off as u64;
        }
        frame += 1;
    }
    data.len() as u64
}

/// Measures the durable-trace cost and crash recovery on one
/// solver-heavy campaign (`crc_guard` × HigherOrder, fixed 40-run
/// budget): campaign wall time without a trace (best of three) versus
/// with a trace under each fsync policy, then a crash at ~60% of the
/// recorded frames resumed back to a full report, timed and checked for
/// bit-identical parity.
fn resume_bench() -> (f64, Vec<ResumeBenchRow>, ResumeRecovery, bool) {
    let (program, natives) = corpus::crc_guard();
    let width = program.input_width();
    let technique = Technique::HigherOrder;
    let best_of = |f: &mut dyn FnMut() -> Report| -> (Report, f64) {
        let mut best = f64::INFINITY;
        let mut report = None;
        for _ in 0..3 {
            let start = Instant::now();
            let r = f();
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            report = Some(r);
        }
        (report.expect("three passes ran"), best)
    };

    let (baseline_report, baseline_ms) =
        best_of(&mut || Driver::new(&program, &natives, config(width, 40, 1)).run(technique));
    let want = report_fingerprint(&baseline_report);

    let dir = std::env::temp_dir().join(format!("hotg-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir bench tempdir");
    let mut rows = Vec::new();
    for fsync in [
        FsyncPolicy::EveryEvent,
        FsyncPolicy::EveryGeneration,
        FsyncPolicy::Close,
    ] {
        let path = dir.join(format!("resume-{}.trace", fsync.name()));
        let (r, wall_ms) = best_of(&mut || {
            let cfg = DriverConfig {
                trace: Some(TraceConfig {
                    fsync,
                    ..TraceConfig::new(&path)
                }),
                ..config(width, 40, 1)
            };
            Driver::new(&program, &natives, cfg).run(technique)
        });
        assert_eq!(
            want,
            report_fingerprint(&r),
            "durable trace perturbed the campaign under fsync={}",
            fsync.name()
        );
        let trace_bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
        let overhead_pct = if baseline_ms > 0.0 {
            ((wall_ms - baseline_ms) / baseline_ms * 100.0).max(0.0)
        } else {
            0.0
        };
        rows.push(ResumeBenchRow {
            fsync,
            wall_ms,
            overhead_pct,
            trace_bytes,
            frames: trace_frames(&path),
        });
        eprintln!(
            "resume fsync={:<16} {wall_ms:>7.1}ms (+{overhead_pct:.1}% vs \
             {baseline_ms:.1}ms untraced), {trace_bytes} trace bytes",
            fsync.name()
        );
    }

    // Crash at ~60% of the every-generation trace and resume.
    let trace_path = dir.join(format!(
        "resume-{}.trace",
        FsyncPolicy::EveryGeneration.name()
    ));
    let frames = trace_frames(&trace_path);
    let crash_frame = frames * 6 / 10;
    let full = std::fs::read(&trace_path).expect("read trace");
    let crash_path = dir.join("resume-crash.trace");
    std::fs::write(
        &crash_path,
        &full[..trace_cut_at(&trace_path, crash_frame) as usize],
    )
    .expect("write crashed trace");
    let cfg = DriverConfig {
        trace: Some(TraceConfig::new(&crash_path)),
        ..config(width, 40, 1)
    };
    let driver = Driver::new(&program, &natives, cfg);
    let start = Instant::now();
    let resumed = driver
        .resume_with_sink(technique, &mut hotg_core::NullSink)
        .expect("resume from crashed trace");
    let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
    let parity = report_fingerprint(&resumed.report) == want;
    let recovery = ResumeRecovery {
        crash_frame,
        frames,
        recovery_ms,
        events_replayed: resumed.recovery.events_replayed,
        parity,
    };
    eprintln!(
        "resume recovery: crash at frame {crash_frame}/{frames}, resumed in \
         {recovery_ms:.1}ms ({} events replayed), parity {parity}",
        recovery.events_replayed,
    );
    let every_gen_ok = rows
        .iter()
        .find(|r| r.fsync == FsyncPolicy::EveryGeneration)
        .is_some_and(|r| r.overhead_pct <= RESUME_OVERHEAD_CEILING_PCT);
    let pass = parity && every_gen_ok;
    for row in &rows {
        let _ = std::fs::remove_file(dir.join(format!("resume-{}.trace", row.fsync.name())));
    }
    let _ = std::fs::remove_file(&crash_path);
    (baseline_ms, rows, recovery, pass)
}

fn resume_row_json(r: &ResumeBenchRow) -> String {
    format!(
        "{{\"fsync\": {}, \"wall_ms\": {:.3}, \"overhead_pct\": {:.2}, \
         \"trace_bytes\": {}, \"frames\": {}}}",
        json_str(r.fsync.name()),
        r.wall_ms,
        r.overhead_pct,
        r.trace_bytes,
        r.frames,
    )
}

/// Silence the default panic-hook chatter for the chaos legs: injected
/// worker panics are expected and caught by the driver, so their
/// payloads (tagged `chaos:`) should not spam stderr.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos:"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("chaos:"));
        if !injected {
            default(info);
        }
    }));
}

/// One sharded-campaign parity row: a program × technique campaign run
/// as `shards` partitioned schedulers, its exchange accounting, and
/// whether its report matched the single-shard run bit-for-bit.
struct ShardBenchRow {
    program: &'static str,
    technique: Technique,
    shards: usize,
    per_shard_targets: Vec<u64>,
    exchange_samples: u64,
    exchange_keys: u64,
    parity: bool,
    wall_ms: f64,
}

fn shard_row_json(r: &ShardBenchRow) -> String {
    format!(
        "{{\"program\": {}, \"technique\": {}, \"shards\": {}, \
         \"per_shard_targets\": {:?}, \"exchange_samples\": {}, \
         \"exchange_keys\": {}, \"parity\": {}, \"wall_ms\": {:.3}}}",
        json_str(r.program),
        json_str(r.technique.name()),
        r.shards,
        r.per_shard_targets,
        r.exchange_samples,
        r.exchange_keys,
        r.parity,
        r.wall_ms,
    )
}

fn main() {
    let args = parse_args();
    let max_runs = if args.reduced { 40 } else { 200 };
    let programs: Vec<_> = corpus::all()
        .into_iter()
        .filter(|(name, _)| !args.reduced || REDUCED_PROGRAMS.contains(name))
        .collect();

    let techniques: Vec<Technique> = Technique::ALL
        .into_iter()
        .filter(|t| args.technique.is_none_or(|want| want == *t))
        .collect();

    // Matrix: every program × every selected technique, single-threaded
    // so the per-row wall times are comparable across techniques. Each
    // campaign runs through its event stream; any fold drift against
    // the driver's report is collected and fails the process.
    let mut rows = Vec::new();
    let mut fold_drift = Vec::new();
    for (name, ctor) in &programs {
        let (program, natives) = ctor();
        let width = program.input_width();
        for technique in techniques.iter().copied() {
            let driver = Driver::new(&program, &natives, config(width, max_runs, 1));
            let start = Instant::now();
            let (report, events, mismatches) = run_via_events(&driver, technique);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "{name:<14} {:<18} {:>7.1}ms  {}",
                technique.name(),
                wall_ms,
                report
            );
            fold_drift.extend(
                mismatches
                    .into_iter()
                    .map(|m| format!("{name}/{}: {m}", technique.name())),
            );
            rows.push(row_json(name, &report, wall_ms, events));
        }
    }

    // Chaos legs: the same program selection under a deterministic
    // fault-injection plan. Every campaign must terminate and keep its
    // books straight; the row records the injected-fault accounting.
    let mut chaos_rows = Vec::new();
    if args.chaos {
        quiet_injected_panics();
        for (name, ctor) in &programs {
            let (program, natives) = ctor();
            let width = program.input_width();
            for seed in [1u64, 2] {
                let cfg = DriverConfig {
                    fault_plan: Some(FaultPlan::uniform(seed, 0.2)),
                    target_deadline: Some(Duration::from_secs(10)),
                    ..config(width, max_runs, 1)
                };
                let driver = Driver::new(&program, &natives, cfg);
                let start = Instant::now();
                let (report, _, mismatches) = run_via_events(&driver, Technique::HigherOrder);
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                eprintln!(
                    "chaos {name:<14} seed {seed} {:>7.1}ms  {} injected, \
                     {} faulted, {} degraded",
                    wall_ms,
                    report.faults_injected.total(),
                    report.targets_faulted,
                    report.targets_degraded,
                );
                fold_drift.extend(
                    mismatches
                        .into_iter()
                        .map(|m| format!("chaos {name}/seed{seed}: {m}")),
                );
                chaos_rows.push(chaos_row_json(name, seed, &report, wall_ms));
            }
        }
    }

    // Paper claims (independent of --reduced: they are the gate CI fails
    // on, and cheap at their fixed 40-run budget).
    let claims: Vec<String> = paper_examples()
        .iter()
        .map(|c| {
            format!(
                "{{\"id\": {}, \"program\": {}, \"technique\": {}, \
                 \"claim\": {}, \"measured\": {}, \"pass\": {}}}",
                json_str(c.id),
                json_str(c.program),
                json_str(c.technique.name()),
                json_str(c.claim),
                json_str(&c.measured),
                c.pass
            )
        })
        .collect();
    let failed_claims = paper_examples().iter().filter(|c| !c.pass).count();

    // Parallel speedup: the HigherOrder technique over the whole corpus
    // selection, threads=1 vs threads=N. Campaigns are deterministic per
    // thread count, so the two legs do identical search work. The host's
    // core count is recorded alongside: on a single-core host the pool
    // cannot beat the sequential leg no matter how wide the generations
    // are, so `speedup` is only meaningful when `host_threads > 1`.
    let threads = args.threads.max(2);
    let par_technique = args.technique.unwrap_or(Technique::HigherOrder);
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut sequential_ms = 0.0;
    let mut parallel_ms = 0.0;
    let mut widest = 0usize;
    for (name, ctor) in &programs {
        let (program, natives) = ctor();
        let width = program.input_width();
        for (th, acc) in [(1, &mut sequential_ms), (threads, &mut parallel_ms)] {
            let driver = Driver::new(&program, &natives, config(width, max_runs, th));
            let start = Instant::now();
            let report = driver.run(par_technique);
            *acc += start.elapsed().as_secs_f64() * 1e3;
            widest = widest.max(report.max_generation_width());
            let _ = name;
        }
    }
    let speedup = if parallel_ms > 0.0 {
        sequential_ms / parallel_ms
    } else {
        0.0
    };
    eprintln!(
        "parallel {}: {sequential_ms:.1}ms @1 thread, \
         {parallel_ms:.1}ms @{threads} threads, speedup {speedup:.2}x \
         (host has {host_threads} core(s), widest generation {widest})",
        par_technique.name()
    );

    // Sharded campaigns: every selected directed technique re-run with
    // the campaign partitioned across N shard schedulers, diffed
    // field-by-field against the single-shard report. The rows carry
    // the partitioner's per-shard target counts and the state-exchange
    // volume, so a balance or chattiness regression is visible in the
    // artifact. (The random baseline has no branch-flip targets to
    // partition, so it is exercised in the main matrix only.)
    let shard_count = args.shards.max(2);
    let mut shard_rows: Vec<ShardBenchRow> = Vec::new();
    for (name, ctor) in &programs {
        let (program, natives) = ctor();
        let width = program.input_width();
        for technique in techniques
            .iter()
            .copied()
            .filter(|t| *t != Technique::Random)
        {
            let baseline =
                Driver::new(&program, &natives, config(width, max_runs, 1)).run(technique);
            let mut cfg = config(width, max_runs, 1);
            cfg.shards = shard_count;
            let driver = Driver::new(&program, &natives, cfg);
            let mut log = EventLog::new();
            let start = Instant::now();
            let report = driver.run_with_sink(technique, &mut log);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let parity = fold_mismatches(&baseline, &report).is_empty();
            let (per_shard_targets, exchange_samples, exchange_keys) = log
                .events()
                .iter()
                .find_map(|e| match e {
                    CampaignEvent::ShardStats {
                        per_shard_targets,
                        exchange_samples,
                        exchange_keys,
                        ..
                    } => Some((per_shard_targets.clone(), *exchange_samples, *exchange_keys)),
                    _ => None,
                })
                .unwrap_or_default();
            eprintln!(
                "shards {name:<13} {:<18} {wall_ms:>7.1}ms  targets {:?}, \
                 exchanged {exchange_samples} samples / {exchange_keys} keys{}",
                technique.name(),
                per_shard_targets,
                if parity { "" } else { "  PARITY FAILED" },
            );
            shard_rows.push(ShardBenchRow {
                program: name,
                technique,
                shards: shard_count,
                per_shard_targets,
                exchange_samples,
                exchange_keys,
                parity,
                wall_ms,
            });
        }
    }
    let shards_pass = !shard_rows.is_empty() && shard_rows.iter().all(|r| r.parity);
    let shards_json: Vec<String> = shard_rows.iter().map(shard_row_json).collect();

    // Captured DART-sound query streams, one per corpus program
    // (independent of --reduced, like the paper claims). The
    // solver-throughput replay uses its two stress programs; the backend
    // section below measures every query class that poses queries.
    let streams: Vec<(&'static str, Vec<Formula>)> = corpus::all()
        .into_iter()
        .map(|(name, _)| (name, capture_query_stream(name)))
        .collect();
    let solver_rows: Vec<SolverBenchRow> = streams
        .iter()
        .filter(|(name, _)| SOLVER_BENCH_PROGRAMS.contains(name))
        .map(|(name, stream)| {
            let row = solver_replay(name, stream);
            eprintln!(
                "solver {:<14} {} queries ({} recorded × {} rounds): \
                 {:.0} q/s baseline, {:.0} q/s session, speedup {:.2}x \
                 ({} intern hits, {} clauses reused){}",
                row.program,
                row.queries,
                row.recorded,
                row.rounds,
                row.baseline_qps,
                row.session_qps,
                row.speedup,
                row.intern_hits,
                row.clauses_reused,
                if row.pass { "" } else { "  FAILED (< 3x)" },
            );
            row
        })
        .collect();
    let solver_pass = solver_rows.iter().all(|r| r.pass);
    let solver_json: Vec<String> = solver_rows.iter().map(solver_row_json).collect();

    // Pre-solver cascade: every query class with a nonempty captured
    // stream, measured for how many distinct queries the abstract
    // backend decides without any DPLL(T) work. Gated on the combined
    // rate across classes.
    let backend_rows: Vec<BackendBenchRow> = streams
        .iter()
        .filter(|(_, stream)| !stream.is_empty())
        .map(|(name, stream)| {
            let row = backend_replay(name, stream);
            eprintln!(
                "backend {:<13} {}/{} queries short-circuited by `{}` \
                 ({:.1}% — {} unsat, {} forced-model)",
                row.program,
                row.unsat_short_circuits + row.valid_short_circuits + row.sat_short_circuits,
                row.queries,
                row.backend,
                row.short_circuit_rate * 100.0,
                row.unsat_short_circuits,
                row.sat_short_circuits,
            );
            row
        })
        .collect();
    let backend_queries: u64 = backend_rows.iter().map(|r| r.queries).sum();
    let backend_answered: u64 = backend_rows
        .iter()
        .map(|r| r.unsat_short_circuits + r.valid_short_circuits + r.sat_short_circuits)
        .sum();
    let backend_rate = if backend_queries > 0 {
        backend_answered as f64 / backend_queries as f64
    } else {
        0.0
    };
    let backend_pass = backend_queries > 0 && backend_rate >= BACKEND_SHORT_CIRCUIT_FLOOR;
    let backend_json: Vec<String> = backend_rows.iter().map(backend_row_json).collect();

    // Execution throughput: the bytecode VMs against the tree-walking
    // reference interpreters on loop- and call-heavy programs — the
    // corpus' widest (`fanout`) and loopiest (`crc_guard`) members plus
    // the §7 lexer application's scanning parser, whose chunk-extraction
    // loop is the paper's motivating long-running shape. Independent of
    // --reduced, like the solver replay: it is a CI gate and cheap at
    // its fixed replay budget.
    let exec_programs: [(
        &'static str,
        (hotg_lang::Program, hotg_lang::NativeRegistry),
    ); 3] = [
        ("fanout", corpus::fanout()),
        ("crc_guard", corpus::crc_guard()),
        ("lex_scanning", hotg_lexapp::programs::scanning_parser()),
    ];
    let exec_rows: Vec<ExecBenchRow> = exec_programs
        .iter()
        .map(|(name, (program, natives))| {
            let row = exec_replay(name, program, natives);
            eprintln!(
                "exec {:<16} {} runs/leg ({} vectors × {} rounds): \
                 {:.0} r/s tree, {:.0} r/s vm, speedup {:.2}x \
                 (concrete {:.2}x, concolic {:.2}x, {} instructions)",
                row.program,
                row.runs,
                row.vectors,
                row.rounds,
                row.tree_rps,
                row.vm_rps,
                row.speedup,
                row.concrete_speedup,
                row.concolic_speedup,
                row.instructions,
            );
            row
        })
        .collect();
    let exec_tree_s: f64 = exec_rows.iter().map(|r| r.tree_s).sum();
    let exec_vm_s: f64 = exec_rows.iter().map(|r| r.vm_s).sum();
    let exec_speedup = if exec_vm_s > 0.0 {
        exec_tree_s / exec_vm_s
    } else {
        0.0
    };
    let exec_pass = !exec_rows.is_empty() && exec_speedup >= EXEC_SPEEDUP_FLOOR;
    eprintln!(
        "exec combined: {exec_tree_s:.3}s tree, {exec_vm_s:.3}s vm, \
         speedup {exec_speedup:.2}x{}",
        if exec_pass { "" } else { "  FAILED (< 2x)" },
    );
    let exec_json: Vec<String> = exec_rows.iter().map(exec_row_json).collect();

    // Durable-trace overhead and crash recovery (crc_guard ×
    // HigherOrder, fixed 40-run budget, independent of --reduced: a CI
    // gate like the solver and exec replays).
    let (resume_baseline_ms, resume_rows, resume_recovery, resume_pass) = resume_bench();
    let resume_json: Vec<String> = resume_rows.iter().map(resume_row_json).collect();

    let json = format!(
        "{{\n  \"schema\": \"hotg-campaign-bench/8\",\n  \"reduced\": {},\n  \
         \"max_runs\": {},\n  \"fold_drift\": {},\n  \
         \"rows\": [\n    {}\n  ],\n  \"claims\": [\n    {}\n  ],\n  \
         \"failed_claims\": {},\n  \"chaos\": [\n    {}\n  ],\n  \
         \"solver\": {{\"technique\": {}, \
         \"baseline\": \"fresh-solver-per-query\", \"pass\": {}, \
         \"rows\": [\n    {}\n  ]}},\n  \
         \"backends\": {{\"technique\": {}, \"cascade\": \"abstract -> dpll(t)\", \
         \"combined_short_circuit_rate\": {:.4}, \"floor\": {:.2}, \"pass\": {}, \
         \"rows\": [\n    {}\n  ]}},\n  \
         \"exec\": {{\"mode\": {}, \"baseline\": \"tree-walking-interpreters\", \
         \"combined_speedup\": {:.3}, \"floor\": {:.2}, \"pass\": {}, \
         \"rows\": [\n    {}\n  ]}},\n  \
         \"resume\": {{\"program\": {}, \"technique\": {}, \
         \"baseline_ms\": {:.3}, \"overhead_ceiling_pct\": {:.1}, \"pass\": {}, \
         \"rows\": [\n    {}\n  ], \
         \"recovery\": {{\"crash_frame\": {}, \"frames\": {}, \
         \"recovery_ms\": {:.3}, \"events_replayed\": {}, \"parity\": {}}}}},\n  \
         \"shards\": {{\"shards\": {}, \"baseline\": \"single-shard-campaign\", \
         \"pass\": {}, \"rows\": [\n    {}\n  ]}},\n  \
         \"parallel\": {{\"technique\": {}, \
         \"threads\": {}, \"host_threads\": {}, \"max_generation_width\": {}, \
         \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \
         \"speedup\": {:.3}}}\n}}\n",
        args.reduced,
        max_runs,
        fold_drift.len(),
        rows.join(",\n    "),
        claims.join(",\n    "),
        failed_claims,
        chaos_rows.join(",\n    "),
        json_str(Technique::DartSound.name()),
        solver_pass,
        solver_json.join(",\n    "),
        json_str(Technique::DartSound.name()),
        backend_rate,
        BACKEND_SHORT_CIRCUIT_FLOOR,
        backend_pass,
        backend_json.join(",\n    "),
        json_str("Uninterpreted"),
        exec_speedup,
        EXEC_SPEEDUP_FLOOR,
        exec_pass,
        exec_json.join(",\n    "),
        json_str("crc_guard"),
        json_str(Technique::HigherOrder.name()),
        resume_baseline_ms,
        RESUME_OVERHEAD_CEILING_PCT,
        resume_pass,
        resume_json.join(",\n    "),
        resume_recovery.crash_frame,
        resume_recovery.frames,
        resume_recovery.recovery_ms,
        resume_recovery.events_replayed,
        resume_recovery.parity,
        shard_count,
        shards_pass,
        shards_json.join(",\n    "),
        json_str(par_technique.name()),
        threads,
        host_threads,
        widest,
        sequential_ms,
        parallel_ms,
        speedup,
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!(
        "wrote {} ({} rows, {} claims)",
        args.out,
        rows.len(),
        claims.len()
    );

    let mut failed = false;
    if failed_claims > 0 {
        eprintln!("campaign-bench: {failed_claims} paper-claim row(s) FAILED");
        failed = true;
    }
    if !solver_pass {
        eprintln!(
            "campaign-bench: solver-throughput replay below the 3x \
             session-reuse floor"
        );
        failed = true;
    }
    if !backend_pass {
        eprintln!(
            "campaign-bench: abstract backend short-circuited {:.1}% of \
             the bench query streams (floor {:.0}%)",
            backend_rate * 100.0,
            BACKEND_SHORT_CIRCUIT_FLOOR * 100.0
        );
        failed = true;
    }
    if !exec_pass {
        eprintln!(
            "campaign-bench: execution-throughput replay at {exec_speedup:.2}x, \
             below the {EXEC_SPEEDUP_FLOOR}x bytecode-VM floor"
        );
        failed = true;
    }
    if !resume_pass {
        eprintln!(
            "campaign-bench: crash-safe resume gate FAILED (parity {}, \
             every-generation trace overhead must be <= {RESUME_OVERHEAD_CEILING_PCT}%)",
            resume_recovery.parity
        );
        failed = true;
    }
    if !shards_pass {
        eprintln!(
            "campaign-bench: sharded-campaign parity FAILED (a {shard_count}-shard \
             report drifted from its single-shard baseline)"
        );
        failed = true;
    }
    if !fold_drift.is_empty() {
        eprintln!(
            "campaign-bench: event-stream fold drifted from the driver report in {} place(s):",
            fold_drift.len()
        );
        for m in &fold_drift {
            eprintln!("  {m}");
        }
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
