//! Hermetic in-repo property-testing mini-framework.
//!
//! The build environment for this workspace is fully offline, so the test
//! suites cannot depend on the external `proptest` crate. This crate
//! implements the (small) subset of the proptest API the workspace actually
//! uses, with the same surface syntax:
//!
//! - [`Strategy`] with `prop_map`, `prop_recursive`, and `boxed`
//! - [`BoxedStrategy`], [`Just`], integer-range strategies, tuple strategies
//! - [`collection::vec`] and [`bool::ANY`]
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros
//! - [`ProptestConfig`] / [`TestCaseError`]
//!
//! Semantics differ from real proptest in two deliberate ways: there is no
//! shrinking (a failing case reports its RNG seed and case index instead,
//! which is enough to reproduce deterministically), and `prop_assert!`
//! panics rather than returning `Err` (test bodies that `?`-propagate a
//! `Result<(), TestCaseError>` still compile and behave identically,
//! because a panic fails the test case just as an `Err` would).

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
    /// Remaining node budget for recursive strategies; refilled at the top
    /// of every `prop_recursive` draw so generated trees stay near the
    /// strategy's `desired_size` instead of growing geometrically.
    budget: u32,
}

impl TestRng {
    /// Builds a generator from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            budget: 0,
        }
    }

    /// Refills the recursion budget (called at the top of a recursive draw).
    pub fn set_budget(&mut self, budget: u32) {
        self.budget = budget;
    }

    /// Decides whether a recursive strategy may take its recursive arm:
    /// requires remaining budget and a 3-in-4 coin, consuming one unit of
    /// budget on success.
    pub fn take_budget(&mut self) -> bool {
        if self.budget == 0 || self.next_u64() & 3 == 0 {
            return false;
        }
        self.budget -= 1;
        true
    }

    /// Derives the per-test seed from the test name (FNV-1a) so every
    /// property test is deterministic but decorrelated from its siblings.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seed_from_u64(h)
    }

    /// Next raw 64 bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform value in the inclusive span `[lo, hi]`.
    pub fn in_span(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty span");
        let width = (hi - lo + 1) as u128;
        lo + ((self.next_u64() as u128) % width) as i128
    }
}

// ---------------------------------------------------------------------------
// Errors and configuration
// ---------------------------------------------------------------------------

/// Failure value for property-test bodies that return `Result`.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed test case with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }

    /// Builds a recursive strategy: `self` is the leaf case, and `f` maps a
    /// strategy for depth-`d` values to one for depth-`d+1` values. As in
    /// proptest, `desired_size` bounds the expected total number of
    /// recursive nodes per draw; `_expected_branch` is accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let leaf = base.clone();
            let deeper = f(current).boxed();
            current = BoxedStrategy {
                gen: Rc::new(move |rng: &mut TestRng| {
                    if rng.take_budget() {
                        deeper.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                }),
            };
        }
        let inner = current;
        BoxedStrategy {
            gen: Rc::new(move |rng: &mut TestRng| {
                rng.set_budget(desired_size);
                inner.generate(rng)
            }),
        }
    }
}

/// Type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between type-erased alternatives (output of
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

// Integer ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_span(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_span(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

// Tuple strategies up to arity 6.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_span(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy (mirror of `proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                $crate::proptest!(@run config rng [$(($arg, $strat))*] $body);
            }
        )*
    };
    (@run $config:ident $rng:ident [$(($arg:ident, $strat:expr))*] $body:block) => {
        $(let $arg = ($strat);)*
        for __case in 0..$config.cases {
            $(let $arg = $crate::Strategy::generate(&$arg, &mut $rng);)*
            let __result: ::std::result::Result<(), $crate::TestCaseError> =
                (|| { $body Ok(()) })();
            if let Err(e) = __result {
                panic!("property failed at case {}: {}", __case, e);
            }
        }
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("prop_assert!({}) failed: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq! failed: `{:?}` != `{:?}`",
                l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq! failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            );
        }
    }};
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Everything a property-test file needs, mirror of `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0i64..10, -5i64..=5);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!((-5..=5).contains(&b));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = prop_oneof![Just(1i64), (10i64..=20).prop_map(|x| x * 2)];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (20..=40).contains(&v));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = collection::vec(-3i64..=3, 1..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
        }
        let exact = collection::vec(0i64..=0, 3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..100).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::seed_from_u64(4);
        let mut saw_node = false;
        for _ in 0..100 {
            let t = s.generate(&mut rng);
            assert!(depth(&t) <= 5);
            if matches!(t, Tree::Node(..)) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The proptest! macro itself: bodies run, `?` and prop_assert work.
        #[test]
        fn macro_smoke(a in -50i64..=50, v in collection::vec(0i64..10, 0..4)) {
            prop_assert!(a >= -50 && a <= 50);
            prop_assert_eq!(v.len(), v.len());
            let ok: Result<(), TestCaseError> = Ok(());
            ok?;
            if a > i64::MAX - 1 {
                return Err(TestCaseError::fail("unreachable"));
            }
        }
    }
}
