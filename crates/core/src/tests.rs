//! End-to-end reproduction of the paper's worked examples, driven through
//! the four techniques.

use crate::{Driver, DriverConfig, Origin, Technique};
use hotg_lang::corpus;

fn config(initial: Vec<i64>) -> DriverConfig {
    DriverConfig {
        max_runs: 40,
        ..DriverConfig::with_initial(initial)
    }
}

/// §1: `obscure` — dynamic test generation (all whitebox techniques)
/// covers both branches starting from the paper's inputs x=33, y=42;
/// random testing does not.
#[test]
fn obscure_whitebox_covers_in_two_runs() {
    let (program, natives) = corpus::obscure();
    for technique in [
        Technique::DartUnsound,
        Technique::DartSound,
        Technique::HigherOrder,
    ] {
        let driver = Driver::new(&program, &natives, config(vec![33, 42]));
        let report = driver.run(technique);
        assert!(report.found_error(1), "{technique} must find the error");
        assert_eq!(
            report.first_hit(1),
            Some(1),
            "{technique} must find it on the second run"
        );
    }
}

#[test]
fn obscure_random_fails() {
    let (program, natives) = corpus::obscure();
    let driver = Driver::new(&program, &natives, config(vec![33, 42]));
    let report = driver.run(Technique::Random);
    assert!(!report.found_error(1), "random must not invert the hash");
    assert_eq!(report.total_runs(), 40);
}

/// §3.2 + Example 1: `foo` — unsound concretization diverges; sound
/// concretization terminates without reaching the error.
#[test]
fn foo_unsound_diverges() {
    let (program, natives) = corpus::foo();
    let driver = Driver::new(&program, &natives, config(vec![567, 42]));
    let report = driver.run(Technique::DartUnsound);
    assert!(
        report.divergences >= 1,
        "negating the unsound pc must diverge: {report}"
    );
}

#[test]
fn foo_sound_misses_error() {
    let (program, natives) = corpus::foo();
    let driver = Driver::new(&program, &natives, config(vec![567, 42]));
    let report = driver.run(Technique::DartSound);
    assert!(
        !report.found_error(1),
        "sound concretization must miss the error (Example 1): {report}"
    );
    assert!(report.rejected_targets >= 1, "the alternate pc is UNSAT");
    assert_eq!(report.divergences, 0, "sound pcs never diverge");
}

/// Example 7: `foo` with higher-order test generation — two-step
/// generation through an intermediate probe that learns `hash(10)`.
#[test]
fn foo_higher_order_two_step() {
    let (program, natives) = corpus::foo();
    let driver = Driver::new(&program, &natives, config(vec![567, 42]));
    let report = driver.run(Technique::HigherOrder);
    assert!(report.found_error(1), "must reach the error: {report}");
    assert!(report.probes >= 1, "needs an intermediate probe run");
    assert_eq!(report.divergences, 0, "higher-order pcs never diverge");
    // The winning test comes from a symbolic strategy mentioning hash(10)
    // (directly or via the probe-refreshed samples).
    let strategic = report.runs.iter().any(
        |r| matches!(&r.origin, Origin::Strategy { strategy, .. } if strategy.contains("hash")),
    );
    assert!(strategic, "a symbolic strategy must drive the error run");
}

/// Example 2: `foo-bis` — sound concretization misses the error; unsound
/// concretization and higher-order generation reach it.
#[test]
fn foo_bis_sound_misses() {
    let (program, natives) = corpus::foo_bis();
    let driver = Driver::new(&program, &natives, config(vec![33, 42]));
    let report = driver.run(Technique::DartSound);
    assert!(!report.found_error(1), "Example 2: sound misses: {report}");
}

#[test]
fn foo_bis_unsound_finds() {
    let (program, natives) = corpus::foo_bis();
    let driver = Driver::new(&program, &natives, config(vec![33, 42]));
    let report = driver.run(Technique::DartUnsound);
    assert!(
        report.found_error(1),
        "Example 2: unsound reaches the error (good divergence): {report}"
    );
}

#[test]
fn foo_bis_higher_order_finds() {
    let (program, natives) = corpus::foo_bis();
    let driver = Driver::new(&program, &natives, config(vec![33, 42]));
    let report = driver.run(Technique::HigherOrder);
    assert!(report.found_error(1), "{report}");
}

/// Example 3: `bar` — unsound concretization diverges chasing an
/// unsatisfiable conjunction; higher-order generation soundly proves the
/// target invalid and stops after a single execution.
#[test]
fn bar_unsound_diverges() {
    let (program, natives) = corpus::bar();
    let driver = Driver::new(&program, &natives, config(vec![33, 42]));
    let report = driver.run(Technique::DartUnsound);
    assert!(report.divergences >= 1, "{report}");
}

#[test]
fn bar_higher_order_rejects_soundly() {
    let (program, natives) = corpus::bar();
    let driver = Driver::new(&program, &natives, config(vec![33, 42]));
    let report = driver.run(Technique::HigherOrder);
    assert!(!report.found_error(1));
    assert_eq!(report.divergences, 0);
    assert!(
        report.rejected_targets >= 1,
        "the then-branch target is invalid: {report}"
    );
    assert_eq!(
        report.total_runs(),
        1,
        "no test is generated for the invalid target: {report}"
    );
}

/// Example 4: `pub` — higher-order generation succeeds because the
/// antecedent contains the sample hash(x₀) observed on the first run.
#[test]
fn pub_higher_order_uses_samples() {
    let (program, natives) = corpus::pub_fn();
    let driver = Driver::new(&program, &natives, config(vec![1, 2]));
    let report = driver.run(Technique::HigherOrder);
    assert!(report.found_error(1), "{report}");
    assert_eq!(report.first_hit(1), Some(1), "second run hits: {report}");
}

#[test]
fn pub_sound_concretization_also_works() {
    // The paper notes sound concretization handles Example 4 as well.
    let (program, natives) = corpus::pub_fn();
    let driver = Driver::new(&program, &natives, config(vec![1, 2]));
    let report = driver.run(Technique::DartSound);
    assert!(report.found_error(1), "{report}");
}

/// Example 5: `f(x) == f(y)` — only higher-order generation (via the EUF
/// axiom strategy x := y) covers the branch; both concretization modes
/// cannot even form a symbolic target.
#[test]
fn euf_eq_separation() {
    let (program, natives) = corpus::euf_eq();
    for technique in [Technique::DartUnsound, Technique::DartSound] {
        let driver = Driver::new(&program, &natives, config(vec![5, 6]));
        let report = driver.run(technique);
        assert!(
            !report.found_error(1),
            "{technique} cannot justify f(x)=f(y): {report}"
        );
    }
    let driver = Driver::new(&program, &natives, config(vec![5, 6]));
    let report = driver.run(Technique::HigherOrder);
    assert!(report.found_error(1), "EUF strategy x := y: {report}");
    assert_eq!(report.first_hit(1), Some(1));
    // The error run uses equal inputs.
    let hit = &report.runs[report.first_hit(1).unwrap()];
    assert_eq!(hit.inputs[0], hit.inputs[1]);
}

/// Example 6: `f(x) == f(y) + 1` — higher-order generation leverages the
/// samples f(5), f(6) from the first run.
#[test]
fn euf_offset_separation() {
    let (program, natives) = corpus::euf_offset();
    let driver = Driver::new(&program, &natives, config(vec![5, 6]));
    let report = driver.run(Technique::HigherOrder);
    assert!(report.found_error(1), "{report}");
    let hit = &report.runs[report.first_hit(1).unwrap()];
    // f is the identity on the sampled range: x = y + 1.
    assert_eq!(hit.inputs[0], hit.inputs[1] + 1);
    for technique in [Technique::DartUnsound, Technique::DartSound] {
        let driver = Driver::new(&program, &natives, config(vec![5, 6]));
        let report = driver.run(technique);
        assert!(!report.found_error(1), "{technique}: {report}");
    }
}

/// §3.3 final remark: delayed concretization covers the `y == 10` branch
/// that eager sound concretization blocks with its pinning constraint.
#[test]
fn delayed_concretization_separation() {
    let (program, natives) = corpus::delayed();
    let eager = Driver::new(&program, &natives, config(vec![33, 42])).run(Technique::DartSound);
    assert!(
        !eager.found_error(1),
        "eager sound concretization must pin y and miss the error: {eager}"
    );
    let delayed =
        Driver::new(&program, &natives, config(vec![33, 42])).run(Technique::DartSoundDelayed);
    assert!(
        delayed.found_error(1),
        "delayed concretization must negate y == 10 freely: {delayed}"
    );
    assert_eq!(delayed.divergences, 0, "delayed pcs stay sound");
    let hotg = Driver::new(&program, &natives, config(vec![33, 42])).run(Technique::HigherOrder);
    assert!(hotg.found_error(1), "{hotg}");
}

/// Non-linear guard `x * y == 12`: outside every technique's reach (the
/// multiplication is a genuinely unknown instruction), demonstrating that
/// higher-order generation *soundly rejects* rather than diverging.
#[test]
fn nonlinear_all_whitebox_reject() {
    let (program, natives) = corpus::nonlinear();
    let driver = Driver::new(&program, &natives, config(vec![3, 5]));
    let report = driver.run(Technique::HigherOrder);
    assert!(!report.found_error(1));
    assert_eq!(report.divergences, 0);
}

/// CRC-guarded payload: higher-order generation inverts the *chained*
/// checksum applications. From an arbitrary start it first satisfies the
/// checksum for the current payload (strategy binds `claim` to the nested
/// crc8 chain), then probes to learn the chain for the `buf[0] = 77`
/// payload, reaching the deep error. Concretization-based techniques get
/// stuck at the checksum.
#[test]
fn crc_guard_higher_order_only() {
    let (program, natives) = corpus::crc_guard();
    let cfg = DriverConfig {
        max_runs: 60,
        ..DriverConfig::with_initial(vec![1, 2, 3, 4, 0])
    };
    let hotg = Driver::new(&program, &natives, cfg.clone()).run(Technique::HigherOrder);
    assert!(hotg.found_error(1), "{hotg}");
    for technique in [Technique::DartUnsound, Technique::DartSound] {
        let r = Driver::new(&program, &natives, cfg.clone()).run(technique);
        assert!(
            !r.found_error(1),
            "{technique} must be stuck at the checksum: {r}"
        );
    }
}

/// k-step generalization of Example 7 (§5.3): deeper chains need probe
/// runs to learn `hash` at fresh points.
#[test]
fn kstep_multi_step_generation() {
    for k in 2..=3usize {
        let (program, natives) = corpus::kstep(k);
        let mut initial = vec![33, 42];
        initial.extend(std::iter::repeat(0).take(k - 1));
        let cfg = DriverConfig {
            max_runs: 60,
            ..DriverConfig::with_initial(initial)
        };
        let driver = Driver::new(&program, &natives, cfg);
        let report = driver.run(Technique::HigherOrder);
        assert!(report.found_error(1), "k={k}: {report}");
        assert!(report.probes >= 1, "k={k} needs probes: {report}");
    }
}

/// §8: higher-order compositional test generation — the summarized
/// helper is abstracted as `adjusted#(y)` constrained by its summary
/// implications, and the deep error is reached via a strategy that
/// mentions the *summarized* application, probed multi-step style.
#[test]
fn composed_compositional_finds_error() {
    let (program, natives) = corpus::composed();
    let cfg = config(vec![0, 0]);
    let comp =
        Driver::new(&program, &natives, cfg.clone()).run(Technique::HigherOrderCompositional);
    assert!(comp.found_error(1), "compositional must reach it: {comp}");
    assert_eq!(comp.divergences, 0);
    // The winning strategy speaks about the summarized function.
    let mentions_helper = comp.runs.iter().any(
        |r| matches!(&r.origin, Origin::Strategy { strategy, .. } if strategy.contains("adjusted")),
    );
    assert!(
        mentions_helper,
        "a strategy must mention the summarized call: {comp}"
    );
    // Inline higher-order also succeeds (precision baseline).
    let inline = Driver::new(&program, &natives, cfg).run(Technique::HigherOrder);
    assert!(inline.found_error(1), "{inline}");
}

/// Seed-corpus executions run before the search and are labelled.
#[test]
fn seed_corpus_runs_first() {
    let (program, natives) = corpus::obscure();
    let cfg = DriverConfig {
        seed_corpus: vec![vec![567, 42]],
        ..config(vec![0, 0])
    };
    let report = Driver::new(&program, &natives, cfg).run(Technique::HigherOrder);
    assert!(matches!(report.runs[0].origin, Origin::Initial));
    assert!(matches!(report.runs[1].origin, Origin::Seed));
    // The seed itself hits the error (x = hash(y) already).
    assert_eq!(report.first_hit(1), Some(1));
    assert!(report.elapsed > std::time::Duration::ZERO);
}

/// Boundary of Theorem 4 (a finding of this reproduction): when sound
/// concretization makes a *nested* unknown product constant, the outer
/// product becomes linear for it — but stays an uninterpreted
/// application for higher-order generation, whose sound invalidity
/// verdict then blocks the target. The simulation theorem presumes the
/// imprecision sites coincide across modes; this program breaks that
/// premise, and eager sound concretization strictly wins.
#[test]
fn theorem4_boundary_sound_beats_higher_order() {
    let (program, natives) = corpus::theorem4_boundary();
    let cfg = config(vec![-3, -10, 10]);
    let sound = Driver::new(&program, &natives, cfg.clone()).run(Technique::DartSound);
    assert!(
        sound.found_error(1),
        "sound concretization keeps the outer product linear and solves y = 0: {sound}"
    );
    let hotg = Driver::new(&program, &natives, cfg).run(Technique::HigherOrder);
    assert!(
        !hotg.found_error(1),
        "higher-order soundly rejects (free @mul need not be zero anywhere): {hotg}"
    );
    assert_eq!(hotg.divergences, 0);
}

/// Divergence-freedom of the sound techniques on the whole corpus
/// (Theorems 2 and 3).
#[test]
fn sound_modes_never_diverge_on_corpus() {
    for (name, ctor) in corpus::all() {
        let (program, natives) = ctor();
        let width = program.input_width();
        let cfg = DriverConfig {
            max_runs: 25,
            ..DriverConfig::with_initial(vec![7; width])
        };
        for technique in [
            Technique::DartSound,
            Technique::DartSoundDelayed,
            Technique::HigherOrder,
        ] {
            let driver = Driver::new(&program, &natives, cfg.clone());
            let report = driver.run(technique);
            assert_eq!(
                report.divergences, 0,
                "{technique} diverged on {name}: {report}"
            );
        }
    }
}

/// Theorem 4 (simulation): on the corpus, whenever the sound-concretization
/// search generates a test for a target, the higher-order search reaches
/// at least as much coverage and at least as many errors.
#[test]
fn higher_order_dominates_sound_concretization() {
    for (name, ctor) in corpus::all() {
        let (program, natives) = ctor();
        let width = program.input_width();
        let cfg = DriverConfig {
            max_runs: 40,
            ..DriverConfig::with_initial(vec![3; width])
        };
        let sound = Driver::new(&program, &natives, cfg.clone()).run(Technique::DartSound);
        let hotg = Driver::new(&program, &natives, cfg.clone()).run(Technique::HigherOrder);
        assert!(
            hotg.covered_directions() >= sound.covered_directions(),
            "{name}: HOTG coverage {} < sound coverage {}",
            hotg.covered_directions(),
            sound.covered_directions()
        );
        for code in sound.errors.keys() {
            assert!(
                hotg.found_error(*code),
                "{name}: sound found error {code} but HOTG did not"
            );
        }
    }
}
