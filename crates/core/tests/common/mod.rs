//! Helpers shared by the integration suites (parity, resume, chaos):
//! the canonical report rendering the golden digests are computed over,
//! the toolchain-independent digest, and the chaos panic silencer.

// Each integration test binary compiles its own copy of this module and
// uses a subset of it.
#![allow(dead_code)]

use hotg_core::Report;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Once;

/// Unique per-process temp path for one test artifact.
pub fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotg-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir tempdir");
    dir.join(name)
}

/// Byte offsets just past each frame of a durable trace file, walking
/// the length fields exactly as the recovery reader does. `ends[0]` is
/// the end of the header frame, so truncating the file to `ends[k]`
/// leaves a prefix of exactly `k` salvageable events.
pub fn frame_ends(path: &Path) -> Vec<u64> {
    let data = std::fs::read(path).expect("read trace");
    assert!(data.len() >= 8, "trace missing magic");
    let mut off = 8usize;
    let mut ends = Vec::new();
    while off + 8 <= data.len() {
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        if off + 8 + len > data.len() {
            break;
        }
        off += 8 + len;
        ends.push(off as u64);
    }
    assert_eq!(off, data.len(), "trace has trailing garbage");
    ends
}

/// Silences the expected, caught chaos panics (see the chaos suite).
pub fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("chaos:"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// FNV-1a over the canonical report rendering: independent of the
/// standard library's hasher internals, so digests stay comparable
/// across toolchains.
pub fn fnv64(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical, deterministic rendering of everything the campaign
/// observed. Field order is fixed; nondeterministic fields (elapsed,
/// cache hit/miss split) are omitted, as are the trace-sink health
/// counters (`sink_errors`, `trace_faults`) — a resumed campaign
/// re-writes part of its trace, so its I/O telemetry legitimately
/// differs from the uninterrupted run it must otherwise match.
pub fn canonical(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "technique={}", r.technique);
    let _ = writeln!(s, "program={}", r.program);
    for run in &r.runs {
        let _ = writeln!(
            s,
            "run inputs={:?} outcome={:?} origin={:?} diverged={:?} path={:?}",
            run.inputs, run.outcome, run.origin, run.diverged, run.path
        );
    }
    let _ = writeln!(s, "errors={:?}", r.errors);
    let _ = writeln!(s, "coverage={:?}", r.coverage);
    let _ = writeln!(s, "divergences={}", r.divergences);
    let _ = writeln!(s, "probes={}", r.probes);
    let _ = writeln!(s, "solver_calls={}", r.solver_calls);
    let _ = writeln!(s, "rejected_targets={}", r.rejected_targets);
    let _ = writeln!(s, "targets_pruned_static={}", r.targets_pruned_static);
    let _ = writeln!(s, "presampled_sites={}", r.presampled_sites);
    let _ = writeln!(s, "branch_sites={}", r.branch_sites);
    let _ = writeln!(s, "generation_widths={:?}", r.generation_widths);
    let _ = writeln!(s, "solver_errors={}", r.solver_errors);
    let _ = writeln!(s, "targets_degraded={}", r.targets_degraded);
    let _ = writeln!(s, "targets_faulted={}", r.targets_faulted);
    let _ = writeln!(s, "budget_escalations={}", r.budget_escalations);
    let _ = writeln!(s, "fuel_exhausted_runs={}", r.fuel_exhausted_runs);
    let _ = writeln!(s, "fault_kinds={:?}", r.fault_kinds);
    let _ = writeln!(s, "degradations={:?}", r.degradations);
    let _ = writeln!(s, "faults_injected={:?}", r.faults_injected);
    let _ = writeln!(s, "campaign_timed_out={}", r.campaign_timed_out);
    s
}
