//! Linear-form extraction: rewriting terms into sums
//! `c₀ + Σ cᵢ·kᵢ` where each key `kᵢ` is a symbolic variable or an opaque
//! uninterpreted application.
//!
//! This defines the decidable theory `T` of the engine: a term is "in `T`"
//! exactly when it linearizes. Non-linear terms (`x*y`, `x/y`, `x%y`…) are
//! the paper's "complex/unknown instructions" — the concolic engine either
//! concretizes them (Figure 1, line 13) or models them with fresh
//! uninterpreted functions (Figure 3).

use crate::atom::{Atom, Rel};
use crate::rat::Rat;
use crate::sym::Var;
use crate::term::{OpKind, Term};
use std::collections::BTreeMap;
use std::fmt;

/// A key in a linear expression: either a symbolic variable or an opaque
/// uninterpreted application term.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinKey {
    /// A symbolic input variable.
    Var(Var),
    /// An uninterpreted application, treated as an opaque unknown.
    App(Term),
}

impl LinKey {
    /// Converts the key back to a [`Term`].
    pub fn to_term(&self) -> Term {
        match self {
            LinKey::Var(v) => Term::Var(*v),
            LinKey::App(t) => t.clone(),
        }
    }
}

/// Error returned when a term cannot be expressed linearly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonLinearError {
    /// The offending subterm.
    pub term: Term,
}

impl fmt::Display for NonLinearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "term is not linear over the theory T")
    }
}

impl std::error::Error for NonLinearError {}

/// A linear expression `constant + Σ coeff·key`.
///
/// # Examples
///
/// ```
/// use hotg_logic::{LinExpr, Rat, Signature, Sort, Term};
///
/// let mut sig = Signature::new();
/// let x = sig.declare_var("x", Sort::Int);
/// let e = LinExpr::linearize(&(Term::var(x) + Term::int(3))).unwrap();
/// assert_eq!(e.constant(), Rat::from(3));
/// assert_eq!(e.coeffs().count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinExpr {
    coeffs: BTreeMap<LinKey, Rat>,
    constant: Rat,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant_expr(c: Rat) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// A single key with coefficient 1.
    pub fn key(k: LinKey) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(k, Rat::ONE);
        LinExpr {
            coeffs,
            constant: Rat::ZERO,
        }
    }

    /// Extracts the linear form of a term.
    ///
    /// # Errors
    ///
    /// Returns [`NonLinearError`] naming the first subterm outside `T`
    /// (non-constant multiplication, division, or remainder).
    pub fn linearize(term: &Term) -> Result<LinExpr, NonLinearError> {
        match term {
            Term::Var(v) => Ok(LinExpr::key(LinKey::Var(*v))),
            Term::Int(c) => Ok(LinExpr::constant_expr(Rat::from(*c))),
            Term::App(..) => Ok(LinExpr::key(LinKey::App(term.clone()))),
            Term::Op(OpKind::Add, args) => {
                let mut acc = LinExpr::zero();
                for a in args {
                    acc = acc.add(&LinExpr::linearize(a)?);
                }
                Ok(acc)
            }
            Term::Op(OpKind::Sub, args) => {
                Ok(LinExpr::linearize(&args[0])?
                    .add(&LinExpr::linearize(&args[1])?.scale(-Rat::ONE)))
            }
            Term::Op(OpKind::Neg, args) => Ok(LinExpr::linearize(&args[0])?.scale(-Rat::ONE)),
            Term::Op(OpKind::Mul, args) => {
                let l = LinExpr::linearize(&args[0])?;
                let r = LinExpr::linearize(&args[1])?;
                match (l.as_constant(), r.as_constant()) {
                    (Some(c), _) => Ok(r.scale(c)),
                    (_, Some(c)) => Ok(l.scale(c)),
                    _ => Err(NonLinearError { term: term.clone() }),
                }
            }
            Term::Op(OpKind::Div | OpKind::Mod, _) => Err(NonLinearError { term: term.clone() }),
        }
    }

    /// Sum of two linear expressions.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant += other.constant;
        for (k, c) in &other.coeffs {
            let slot = out.coeffs.entry(k.clone()).or_default();
            *slot += *c;
            if slot.is_zero() {
                out.coeffs.remove(k);
            }
        }
        out
    }

    /// Difference of two linear expressions.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-Rat::ONE))
    }

    /// Scales every coefficient and the constant.
    pub fn scale(&self, by: Rat) -> LinExpr {
        if by.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(k, c)| (k.clone(), *c * by))
                .collect(),
            constant: self.constant * by,
        }
    }

    /// The constant part.
    pub fn constant(&self) -> Rat {
        self.constant
    }

    /// If the expression has no keys, its constant value.
    pub fn as_constant(&self) -> Option<Rat> {
        self.coeffs.is_empty().then_some(self.constant)
    }

    /// Iterates over `(key, coefficient)` pairs.
    pub fn coeffs(&self) -> impl Iterator<Item = (&LinKey, Rat)> {
        self.coeffs.iter().map(|(k, c)| (k, *c))
    }

    /// The coefficient of a key (zero if absent).
    pub fn coeff(&self, k: &LinKey) -> Rat {
        self.coeffs.get(k).copied().unwrap_or(Rat::ZERO)
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.coeffs.len()
    }

    /// `true` if the expression is the constant zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty() && self.constant.is_zero()
    }
}

/// A linear constraint `expr REL 0`, the normalized form of an [`Atom`]
/// whose sides are in `T`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinConstraint {
    /// Left-hand side (the right-hand side is always zero).
    pub expr: LinExpr,
    /// Relation against zero.
    pub rel: Rel,
}

impl LinConstraint {
    /// Normalizes an atom `lhs REL rhs` into `lhs - rhs REL 0`.
    ///
    /// # Errors
    ///
    /// Returns [`NonLinearError`] if either side is outside `T`.
    pub fn from_atom(atom: &Atom) -> Result<LinConstraint, NonLinearError> {
        let lhs = LinExpr::linearize(&atom.lhs)?;
        let rhs = LinExpr::linearize(&atom.rhs)?;
        Ok(LinConstraint {
            expr: lhs.sub(&rhs),
            rel: atom.rel,
        })
    }

    /// If the constraint involves no keys, its truth value.
    pub fn const_value(&self) -> Option<bool> {
        self.expr.as_constant().map(|c| match self.rel {
            Rel::Eq => c.is_zero(),
            Rel::Ne => !c.is_zero(),
            Rel::Lt => c.is_negative(),
            Rel::Le => !c.is_positive(),
            Rel::Gt => c.is_positive(),
            Rel::Ge => !c.is_negative(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;
    use crate::sym::Signature;

    fn setup() -> (Signature, Var, Var, crate::FuncSym) {
        let mut sig = Signature::new();
        let x = sig.declare_var("x", Sort::Int);
        let y = sig.declare_var("y", Sort::Int);
        let h = sig.declare_func("h", 1);
        (sig, x, y, h)
    }

    #[test]
    fn linearize_basic() {
        let (_, x, y, _) = setup();
        // 2*x - y + 3
        let t = Term::int(2) * Term::var(x) - Term::var(y) + Term::int(3);
        let e = LinExpr::linearize(&t).unwrap();
        assert_eq!(e.constant(), Rat::from(3));
        assert_eq!(e.coeff(&LinKey::Var(x)), Rat::from(2));
        assert_eq!(e.coeff(&LinKey::Var(y)), Rat::from(-1));
    }

    #[test]
    fn linearize_app_opaque() {
        let (_, x, _, h) = setup();
        let app = Term::app(h, vec![Term::var(x)]);
        let t = app.clone() + app.clone();
        let e = LinExpr::linearize(&t).unwrap();
        assert_eq!(e.coeff(&LinKey::App(app)), Rat::from(2));
        assert_eq!(e.key_count(), 1);
    }

    #[test]
    fn nonlinear_rejected() {
        let (_, x, y, _) = setup();
        let t = Term::var(x) * Term::var(y);
        let err = LinExpr::linearize(&t).unwrap_err();
        assert_eq!(err.term, t);
        let d = Term::op(OpKind::Div, vec![Term::var(x), Term::int(2)]);
        assert!(LinExpr::linearize(&d).is_err());
        let m = Term::op(OpKind::Mod, vec![Term::var(x), Term::int(2)]);
        assert!(LinExpr::linearize(&m).is_err());
    }

    #[test]
    fn cancellation_removes_keys() {
        let (_, x, _, _) = setup();
        let t = Term::var(x) - Term::var(x);
        let e = LinExpr::linearize(&t).unwrap();
        assert!(e.is_zero());
        assert_eq!(e.as_constant(), Some(Rat::ZERO));
    }

    #[test]
    fn scale_zero_clears() {
        let (_, x, _, _) = setup();
        let e = LinExpr::linearize(&Term::var(x)).unwrap().scale(Rat::ZERO);
        assert!(e.is_zero());
    }

    #[test]
    fn constraint_from_atom() {
        let (_, x, y, _) = setup();
        // x = y + 1   →   x - y - 1 = 0
        let a = Atom::eq(Term::var(x), Term::var(y) + Term::int(1));
        let c = LinConstraint::from_atom(&a).unwrap();
        assert_eq!(c.rel, Rel::Eq);
        assert_eq!(c.expr.constant(), Rat::from(-1));
        assert_eq!(c.expr.coeff(&LinKey::Var(x)), Rat::ONE);
        assert_eq!(c.expr.coeff(&LinKey::Var(y)), Rat::from(-1));
    }

    #[test]
    fn constraint_constant_value() {
        let a = Atom::new(Term::int(3), Rel::Lt, Term::int(5));
        let c = LinConstraint::from_atom(&a).unwrap();
        assert_eq!(c.const_value(), Some(true));
        let (_, x, _, _) = setup();
        let b = Atom::new(Term::var(x), Rel::Lt, Term::int(5));
        let cb = LinConstraint::from_atom(&b).unwrap();
        assert_eq!(cb.const_value(), None);
        // All relations against zero.
        for (rel, expect) in [
            (Rel::Eq, false),
            (Rel::Ne, true),
            (Rel::Lt, true),
            (Rel::Le, true),
            (Rel::Gt, false),
            (Rel::Ge, false),
        ] {
            let at = Atom::new(Term::int(-1), rel, Term::int(0));
            assert_eq!(
                LinConstraint::from_atom(&at).unwrap().const_value(),
                Some(expect),
                "{rel:?}"
            );
        }
    }

    #[test]
    fn key_to_term_roundtrip() {
        let (_, x, _, h) = setup();
        assert_eq!(LinKey::Var(x).to_term(), Term::var(x));
        let app = Term::app(h, vec![Term::int(1)]);
        assert_eq!(LinKey::App(app.clone()).to_term(), app);
    }
}
