//! The strategy-pluggable campaign engine.
//!
//! The engine owns everything a test-generation campaign shares across
//! techniques — the generational scheduler ([`scheduler`]), the
//! degradation ladder ([`ladder`]), chaos injection, panic isolation,
//! escalated-budget retries, and the merge of worker results — while
//! the technique-specific behavior (path-constraint production, flip
//! query construction, probe/multi-step handling) lives behind the
//! [`Strategy`](crate::strategy::Strategy) trait.
//!
//! Instead of mutating [`Report`] counters in place, the engine emits a
//! [`CampaignEvent`] for every observable fact, in deterministic merge
//! order, and builds its own report by folding that stream (see
//! [`crate::events`]). Extra sinks — the optional JSONL trace and the
//! caller's [`EventSink`] — observe the very same stream.
//!
//! # Parallel generational search
//!
//! Each generation is processed in two phases. First, its targets are
//! filtered through the dedup set in deterministic order; then every
//! surviving target is processed as a *pure function* of the target and a
//! snapshot of the sample table taken at generation start — solver
//! queries, strategy interpretation, and probe executions all run against
//! thread-local state. A `std::thread::scope` worker pool (size
//! [`DriverConfig::threads`]) pulls targets off an atomic cursor; the
//! per-target outcomes are merged back into the report, the sample table,
//! and the next generation's worklist **in target order** on the calling
//! thread. Because the per-target computation never observes shared
//! mutable state and the merge order is fixed, the resulting [`Report`]
//! is identical for every thread count (only the solver-cache hit/miss
//! counters can differ — racing workers may each miss a key one of them
//! is about to fill, but the cached values are pure functions of the key).

pub(crate) mod ladder;
pub(crate) mod outcome;
pub(crate) mod scheduler;

use crate::chaos::{chaos_key, injected_fault, FaultCounters, FaultSite};
use crate::config::DriverConfig;
use crate::events::{CampaignEvent, EventSink, JsonlSink};
use crate::report::{Origin, Report, RunRecord};
use crate::strategy::{Strategy, TargetCx};
use hotg_analysis::AnalysisResult;
use hotg_concolic::{
    diverged, execute_compiled_profiled, execute_profiled, ConcolicContext, ConcolicRun,
    ExecProfile,
};
use hotg_lang::{BranchId, CompiledProgram, InputVector, NativeRegistry, Program};
use hotg_logic::LogicArena;
use hotg_logic::{Formula, Var};
use hotg_solver::{
    Deadline, Samples, SmtResult, SmtSession, SmtSolver, ValidityChecker, ValidityOutcome,
};
use outcome::{path_key, scale_budget, Target, TargetOutcome, WorkerRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared campaign engine: borrows the program, the symbolic
/// context, the static-analysis oracle, and the configuration from the
/// [`Driver`](crate::Driver), and runs one campaign per call.
pub(crate) struct Engine<'a> {
    pub(crate) program: &'a Program,
    pub(crate) natives: &'a NativeRegistry,
    pub(crate) ctx: &'a ConcolicContext,
    pub(crate) analysis: &'a AnalysisResult,
    pub(crate) config: &'a DriverConfig,
    /// The campaign's term/formula arena (owned by the driver, never
    /// global): all solver instances of this campaign intern through it.
    pub(crate) arena: &'a Arc<LogicArena>,
    /// The driver's once-compiled bytecode; `None` runs the campaign on
    /// the reference tree-walkers (identical reports, lower throughput).
    pub(crate) compiled: Option<&'a CompiledProgram>,
    /// Execution-layer telemetry for this campaign, summed across worker
    /// threads and announced once as [`CampaignEvent::ExecStats`].
    pub(crate) exec: ExecCounters,
}

/// Atomic execution-telemetry counters: workers bump them from run
/// helpers ([`Engine::run_concrete`], [`Engine::execute_concolic`]); the
/// totals are announcement-only (never folded into the report), so the
/// relaxed ordering is fine.
#[derive(Debug, Default)]
pub(crate) struct ExecCounters {
    /// Bytecode instructions retired across all VM runs.
    pub(crate) instructions: AtomicU64,
    /// Runs executed on the bytecode VMs (concrete or concolic).
    pub(crate) vm_runs: AtomicU64,
    /// Runs executed by the tree-walkers (fallback or `bytecode: false`).
    pub(crate) tree_runs: AtomicU64,
}

/// The engine's event funnel: every event is folded into the report
/// under construction, then forwarded to the optional JSONL trace and
/// the caller's sink. Emission happens on the merge thread only.
pub(crate) struct Emitter<'s> {
    pub(crate) report: Report,
    trace: Option<JsonlSink>,
    external: &'s mut dyn EventSink,
}

impl Emitter<'_> {
    pub(crate) fn emit(&mut self, event: CampaignEvent) {
        self.report.fold(&event);
        if let Some(trace) = &mut self.trace {
            trace.emit(&event);
        }
        self.external.emit(&event);
    }
}

/// Mutable search state of one directed campaign, owned by the merge
/// thread: the next generation's worklist, the dedup set, and the
/// accumulated `IOF` sample table.
#[derive(Default)]
pub(crate) struct SearchState {
    pub(crate) pending: Vec<Target>,
    pub(crate) seen: HashSet<u64>,
    pub(crate) samples: Samples,
}

impl<'a> Engine<'a> {
    /// Runs one campaign under `strategy`, streaming events into the
    /// report fold, the configured trace, and `external`.
    pub(crate) fn run(&self, strategy: &dyn Strategy, external: &mut dyn EventSink) -> Report {
        let trace = self.config.event_trace.as_ref().and_then(|path| {
            JsonlSink::create(path)
                .map_err(|e| {
                    eprintln!("hotg: cannot open event trace {}: {e}", path.display());
                })
                .ok()
        });
        let mut em = Emitter {
            report: Report::empty(),
            trace,
            external,
        };
        em.emit(CampaignEvent::CampaignStarted {
            technique: strategy.technique(),
            program: self.program.name.clone(),
            branch_sites: self.program.branch_count,
        });
        if strategy.is_directed() {
            self.directed(strategy, &mut em);
        } else {
            self.random_campaign(&mut em);
        }
        em.emit(CampaignEvent::ExecStats {
            instructions: self.exec.instructions.load(Ordering::Relaxed),
            compiled_blocks: self.compiled.map_or(0, |cp| cp.blocks.len()),
            vm_runs: self.exec.vm_runs.load(Ordering::Relaxed),
            tree_runs: self.exec.tree_runs.load(Ordering::Relaxed),
        });
        em.emit(CampaignEvent::CampaignFinished);
        em.report
    }

    /// One concrete run: bytecode VM when a compiled program is
    /// available, reference tree-walker otherwise. Identical `(Outcome,
    /// Trace)` either way — only the telemetry counters differ.
    pub(crate) fn run_concrete(
        &self,
        inputs: &InputVector,
    ) -> (hotg_lang::Outcome, hotg_lang::Trace) {
        match self.compiled {
            Some(cp) => {
                let (outcome, trace, retired) =
                    hotg_lang::run_compiled_counted(cp, inputs, self.config.fuel);
                self.exec.instructions.fetch_add(retired, Ordering::Relaxed);
                self.exec.vm_runs.fetch_add(1, Ordering::Relaxed);
                (outcome, trace)
            }
            None => {
                self.exec.tree_runs.fetch_add(1, Ordering::Relaxed);
                hotg_lang::run(self.program, self.natives, inputs, self.config.fuel)
            }
        }
    }

    /// One concolic run: shadow VM when a compiled program is available,
    /// reference tree-walker otherwise. Both drive the same symbolic
    /// core, so the returned [`ConcolicRun`] is bit-identical either way
    /// (the `instructions` field is telemetry, not behaviour).
    pub(crate) fn execute_concolic(
        &self,
        inputs: &InputVector,
        profile: ExecProfile,
    ) -> ConcolicRun {
        match self.compiled {
            Some(cp) => {
                let run =
                    execute_compiled_profiled(self.ctx, cp, inputs, self.config.fuel, profile);
                self.exec
                    .instructions
                    .fetch_add(run.instructions, Ordering::Relaxed);
                self.exec.vm_runs.fetch_add(1, Ordering::Relaxed);
                run
            }
            None => {
                self.exec.tree_runs.fetch_add(1, Ordering::Relaxed);
                execute_profiled(
                    self.ctx,
                    self.program,
                    self.natives,
                    inputs,
                    self.config.fuel,
                    profile,
                )
            }
        }
    }

    /// The campaign-wide wall-clock cutoff, fixed at campaign start.
    pub(crate) fn campaign_end(&self) -> Deadline {
        match self.config.campaign_deadline {
            Some(d) => Deadline::after(d),
            None => Deadline::NONE,
        }
    }

    fn random_inputs(&self, rng: &mut StdRng) -> Vec<i64> {
        let (lo, hi) = self.config.random_range;
        (0..self.program.input_width())
            .map(|_| rng.gen_range(lo..=hi))
            .collect()
    }

    pub(crate) fn initial_inputs(&self, rng: &mut StdRng) -> Vec<i64> {
        self.config
            .initial_inputs
            .clone()
            .unwrap_or_else(|| self.random_inputs(rng))
    }

    /// Blackbox random testing baseline (the only non-directed
    /// strategy: no symbolic evaluation, no targets, no solver).
    fn random_campaign(&self, em: &mut Emitter<'_>) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let campaign_end = self.campaign_end();
        for i in 0..self.config.max_runs {
            if campaign_end.expired() {
                em.emit(CampaignEvent::CampaignTimedOut);
                break;
            }
            let inputs = if i == 0 {
                self.initial_inputs(&mut rng)
            } else {
                self.random_inputs(&mut rng)
            };
            let (outcome, trace) = self.run_concrete(&InputVector::new(inputs.clone()));
            let outcome = if self.chaos_interp_fault(&inputs) {
                em.emit(CampaignEvent::FaultInjected {
                    site: FaultSite::InterpFault,
                    count: 1,
                });
                hotg_lang::Outcome::RuntimeFault(injected_fault())
            } else {
                outcome
            };
            let record = RunRecord {
                inputs,
                outcome,
                origin: if i == 0 {
                    Origin::Initial
                } else {
                    Origin::Random
                },
                diverged: None,
                path: trace.branches.clone(),
            };
            em.emit(CampaignEvent::RunExecuted {
                record: Box::new(record),
            });
        }
    }

    /// Executes one concolic run under `profile` and expands its
    /// branch-flip targets. Pure with respect to the campaign state:
    /// safe to call from worker threads; the result is folded in by
    /// [`Engine::merge_run`].
    pub(crate) fn execute_run(
        &self,
        inputs: Vec<i64>,
        origin: Origin,
        expected: Option<&[(BranchId, bool)]>,
        profile: ExecProfile,
    ) -> WorkerRun {
        let run = self.execute_concolic(&InputVector::new(inputs.clone()), profile);
        // Chaos: replace the outcome with a synthetic interpreter fault.
        // The divergence flag is cleared (an injected fault is not a
        // soundness verdict on the technique) and the run's branch-flip
        // targets are dropped, as a genuinely faulting run would have
        // stopped before producing them.
        let injected = self.chaos_interp_fault(&inputs);
        let (outcome, div) = if injected {
            (hotg_lang::Outcome::RuntimeFault(injected_fault()), None)
        } else {
            (
                run.outcome.clone(),
                expected.map(|e| diverged(e, &run.trace.branches)),
            )
        };
        let record = RunRecord {
            inputs: inputs.clone(),
            outcome,
            origin,
            diverged: div,
            path: run.trace.branches.clone(),
        };
        let mut children = Vec::new();
        let mut pruned_static = 0;
        let expand: Vec<usize> = if injected {
            Vec::new()
        } else {
            run.pc.branch_indices()
        };
        for j in expand {
            // A constraint that folded to `true` has no input dependence:
            // its negation is trivially infeasible, so it is not a target.
            if run.pc.entries[j].constraint == Formula::True {
                continue;
            }
            // Static oracle: if the analysis proves the flipped direction
            // can never execute (constant branch condition), skip the
            // target without spending a solver/validity query on it.
            if self.config.static_pruning {
                let (id, taken) = run.pc.entries[j].branch.expect("branch entry");
                if self.analysis.flip_infeasible(id, !taken) {
                    pruned_static += 1;
                    continue;
                }
            }
            children.push(Target {
                parent_inputs: inputs.clone(),
                pc: run.pc.clone(),
                j,
                parent_samples: run.samples.clone(),
            });
        }
        WorkerRun {
            record,
            samples: run.samples,
            children,
            pruned_static,
            injected_fault: injected,
        }
    }

    /// Chaos: should this run's outcome become an injected fault?
    fn chaos_interp_fault(&self, inputs: &[i64]) -> bool {
        self.config
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.roll(FaultSite::InterpFault, chaos_key(inputs)))
    }

    /// Chaos: decides whether the solver/validity query identified by
    /// `key` is forced to fail. An injected error wins over an injected
    /// `Unknown` when both fire.
    pub(crate) fn chaos_solver(
        &self,
        out: &mut TargetOutcome,
        key: u64,
    ) -> Option<outcome::Checked> {
        let plan = self.config.fault_plan.as_ref()?;
        if plan.roll(FaultSite::SolverErr, key) {
            out.faults.solver_errs += 1;
            return Some(outcome::Checked::Errored);
        }
        if plan.roll(FaultSite::SolverUnknown, key) {
            out.faults.solver_unknowns += 1;
            return Some(outcome::Checked::Unknown);
        }
        None
    }

    /// Chaos: decides whether a probe run's observed samples are lost.
    pub(crate) fn chaos_probe(&self, out: &mut TargetOutcome, key: u64) -> bool {
        let fired = self
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.roll(FaultSite::ProbeFail, key));
        if fired {
            out.faults.probe_failures += 1;
        }
        fired
    }

    /// Merges solved/strategy values over the parent inputs: DART
    /// generates "variants of the previous inputs" (§1), so inputs the
    /// solver left unconstrained keep their old values.
    pub(crate) fn merge_inputs(&self, parent: &[i64], values: &BTreeMap<Var, i64>) -> Vec<i64> {
        let mut out = parent.to_vec();
        for (i, v) in self.ctx.input_vars().iter().enumerate() {
            if let Some(val) = values.get(v) {
                out[i] = *val;
            }
        }
        out
    }

    /// One escalated-budget retry of an `Unknown` satisfiability verdict
    /// (`DriverConfig::retry_escalation`). Runs on a detached solver:
    /// the inflated-budget verdict must not leak into the shared caches,
    /// where it would make other targets' outcomes depend on whether this
    /// retry ran first.
    pub(crate) fn escalated_smt(
        &self,
        smt: &SmtSolver,
        alt: &Formula,
        out: &mut TargetOutcome,
    ) -> Option<SmtResult> {
        let factor = self.config.retry_escalation;
        if factor <= 1.0 {
            return None;
        }
        let mut cfg = *smt.config();
        cfg.total_node_budget = scale_budget(cfg.total_node_budget, factor);
        cfg.lia.node_budget = scale_budget(cfg.lia.node_budget, factor);
        out.budget_escalations += 1;
        out.solver_calls += 1;
        smt.detached(cfg).check(alt).ok()
    }

    /// Escalated-budget retry of an `Unknown` validity verdict; same
    /// detachment rationale as [`Engine::escalated_smt`].
    pub(crate) fn escalated_validity(
        &self,
        validity: &ValidityChecker,
        samples: &Samples,
        extra: &Formula,
        alt: &Formula,
        out: &mut TargetOutcome,
    ) -> Option<ValidityOutcome> {
        let factor = self.config.retry_escalation;
        if factor <= 1.0 {
            return None;
        }
        let mut cfg = *validity.config();
        cfg.smt.total_node_budget = scale_budget(cfg.smt.total_node_budget, factor);
        cfg.smt.lia.node_budget = scale_budget(cfg.smt.lia.node_budget, factor);
        out.budget_escalations += 1;
        out.solver_calls += 1;
        validity
            .detached(cfg)
            .check_with(self.ctx.input_vars(), samples, extra, alt)
            .ok()
    }

    /// Processes one target against the generation snapshot, with the
    /// worker's panic isolated: a panic (organic or injected) abandons
    /// only this target, which is counted as *faulted* instead of
    /// aborting the campaign. The partial outcome of a panicked worker is
    /// discarded wholesale, so the merged report never depends on how far
    /// the worker got before unwinding.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_target(
        &self,
        strategy: &dyn Strategy,
        job: &outcome::Job,
        snapshot: &Samples,
        summaries: Option<&crate::summaries::SummaryTable>,
        smt: &SmtSolver,
        session: &SmtSession,
        validity: &ValidityChecker,
        campaign_end: Deadline,
    ) -> TargetOutcome {
        let tkey = path_key(&job.expected);
        let inject_panic = self
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.roll(FaultSite::WorkerPanic, tkey));
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("chaos: injected worker panic");
            }
            let mut out = TargetOutcome::default();
            // Per-target wall-clock cutoff, bounded by the campaign
            // deadline, threaded into the solver stack through
            // reconfigured clones that share the campaign's caches.
            // Deadline-induced `Unknown`s are never cached (see
            // `SmtSolver::check`), so an expired target cannot poison
            // another target's verdict.
            let deadline = match self.config.target_deadline {
                Some(d) => Deadline::after(d).earliest(campaign_end),
                None => campaign_end,
            };
            let (smt_local, validity_local);
            let (smt, validity) = if deadline.is_set() {
                let mut vcfg = *validity.config();
                vcfg.smt.deadline = deadline;
                smt_local = smt.reconfigured(vcfg.smt);
                validity_local = validity.reconfigured(vcfg);
                (&smt_local, &validity_local)
            } else {
                (smt, validity)
            };
            let cx = TargetCx {
                engine: self,
                snapshot,
                summaries,
                smt,
                session,
                validity,
                tkey,
            };
            strategy.process_target(&cx, job, &mut out);
            out
        }));
        match result {
            Ok(out) => out,
            Err(_) => TargetOutcome {
                faulted: true,
                faults: FaultCounters {
                    worker_panics: usize::from(inject_panic),
                    ..FaultCounters::default()
                },
                ..TargetOutcome::default()
            },
        }
    }
}
