//! Exact rational arithmetic on `i128`.
//!
//! The simplex core in `hotg-solver` pivots over exact rationals; floating
//! point would make UNSAT answers untrustworthy, and the soundness theorems
//! reproduced from the paper (Theorems 2–4) are only meaningful if the
//! underlying arithmetic is exact. Inputs in this workspace are small
//! (program constants and path-constraint coefficients), so `i128`
//! numerators/denominators with overflow checks are sufficient; overflow is
//! reported by panicking with a descriptive message rather than wrapping.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number with a normalized internal representation:
/// the denominator is always positive and `gcd(num, den) == 1`.
///
/// # Examples
///
/// ```
/// use hotg_logic::Rat;
///
/// let a = Rat::new(1, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(1, 2));
/// assert!(Rat::from(2) > Rat::new(3, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128, // invariant: den > 0, gcd(|num|, den) == 1
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates a rational `num / den`, normalizing signs and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        Rat {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// Numerator of the normalized representation (sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator of the normalized representation (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns `true` if this rational is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Returns `true` if this rational is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// The greatest integer less than or equal to this rational.
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// The least integer greater than or equal to this rational.
    pub fn ceil(self) -> i128 {
        -((-self).floor())
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Converts to `i64` if the value is an integer that fits.
    pub fn to_i64(self) -> Option<i64> {
        if self.den == 1 {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }

    fn checked(num: Option<i128>, den: Option<i128>, op: &str) -> Rat {
        match (num, den) {
            (Some(n), Some(d)) => Rat::new(n, d),
            _ => panic!("rational overflow in {op}"),
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i128> for Rat {
    fn from(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // a/b + c/d = (a*d + c*b) / (b*d), reduced via gcd of denominators
        // first to keep intermediates small.
        let g = gcd(self.den, rhs.den);
        let lb = self.den / g;
        let rb = rhs.den / g;
        let num = self
            .num
            .checked_mul(rb)
            .and_then(|x| rhs.num.checked_mul(lb).and_then(|y| x.checked_add(y)));
        let den = self.den.checked_mul(rb);
        Rat::checked(num, den, "addition")
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let (an, ad) = (self.num / g1, self.den / g2);
        let (bn, bd) = (rhs.num / g2, rhs.den / g1);
        Rat::checked(an.checked_mul(bn), ad.checked_mul(bd), "multiplication")
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b computed as a * b^-1
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b <=> c/d  compares a*d <=> c*b (denominators positive).
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational overflow in comparison");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational overflow in comparison");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

impl std::iter::Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
        assert_eq!(Rat::new(1, 2).denom(), 2);
        assert!(Rat::new(-3, 9).numer() == -1 && Rat::new(-3, 9).denom() == 3);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::from(5) > Rat::new(9, 2));
        assert_eq!(Rat::new(3, 6).cmp(&Rat::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from(5).floor(), 5);
        assert_eq!(Rat::from(5).ceil(), 5);
        assert_eq!(Rat::from(-5).floor(), -5);
    }

    #[test]
    fn predicates() {
        assert!(Rat::from(3).is_integer());
        assert!(!Rat::new(1, 2).is_integer());
        assert!(Rat::ZERO.is_zero());
        assert!(Rat::new(1, 9).is_positive());
        assert!(Rat::new(-1, 9).is_negative());
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(Rat::new(2, 3).recip(), Rat::new(3, 2));
        assert_eq!(Rat::new(-2, 3).recip(), Rat::new(-3, 2));
        assert_eq!(Rat::new(-2, 3).abs(), Rat::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rat::ZERO.recip();
    }

    #[test]
    fn to_i64() {
        assert_eq!(Rat::from(42).to_i64(), Some(42));
        assert_eq!(Rat::new(1, 2).to_i64(), None);
        assert_eq!(Rat::from(i128::from(i64::MAX) + 1).to_i64(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(1, 2).to_string(), "1/2");
        assert_eq!(Rat::from(-7).to_string(), "-7");
    }

    #[test]
    fn sum_iterator() {
        let total: Rat = (1..=4).map(|i| Rat::new(1, i)).sum();
        assert_eq!(total, Rat::new(25, 12));
    }
}
