//! Pretty-printing of `mini` programs back to parseable source text.
//!
//! `to_source` is the inverse of [`crate::parse`] up to whitespace: the
//! round-trip `parse(to_source(p))` yields a structurally identical
//! program (branch ids are assigned in the same source order).

use crate::ast::{BinOp, Expr, Param, Program, Stmt, UnOp};
use std::fmt::Write;

/// Renders a program as parseable `mini` source.
///
/// # Examples
///
/// ```
/// let (program, _) = hotg_lang::corpus::obscure();
/// let src = hotg_lang::pretty::to_source(&program);
/// let reparsed = hotg_lang::parse(&src).unwrap();
/// assert_eq!(program, reparsed);
/// ```
pub fn to_source(p: &Program) -> String {
    let mut out = String::new();
    for n in &p.natives {
        let _ = writeln!(out, "native {}/{};", n.name, n.arity);
    }
    for f in &p.functions {
        let params: Vec<String> = f.params.iter().map(|p| format!("{p}: int")).collect();
        let _ = writeln!(out, "fn {}({}) {{", f.name, params.join(", "));
        write_block(&mut out, &f.body, 1);
        out.push_str("}\n");
    }
    let params: Vec<String> = p
        .params
        .iter()
        .map(|param| match param {
            Param::Scalar(n) => format!("{n}: int"),
            Param::Array(n, len) => format!("{n}: array[{len}]"),
        })
        .collect();
    let _ = writeln!(out, "program {}({}) {{", p.name, params.join(", "));
    write_block(&mut out, &p.body, 1);
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn write_block(out: &mut String, body: &[Stmt], depth: usize) {
    for s in body {
        write_stmt(out, s, depth);
    }
}

fn write_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Let(name, e) => {
            let _ = writeln!(out, "let {name} = {};", expr_to_string(e));
        }
        Stmt::LetArray(name, len) => {
            let _ = writeln!(out, "let {name}[{len}];");
        }
        Stmt::Assign(name, e) => {
            let _ = writeln!(out, "{name} = {};", expr_to_string(e));
        }
        Stmt::AssignIndex(name, idx, val) => {
            let _ = writeln!(
                out,
                "{name}[{}] = {};",
                expr_to_string(idx),
                expr_to_string(val)
            );
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", expr_to_string(cond));
            write_block(out, then_branch, depth + 1);
            if else_branch.is_empty() {
                indent(out, depth);
                out.push_str("}\n");
            } else {
                indent(out, depth);
                out.push_str("} else {\n");
                write_block(out, else_branch, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", expr_to_string(cond));
            write_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Error(code) => {
            let _ = writeln!(out, "error({code});");
        }
        Stmt::Return => out.push_str("return;\n"),
        Stmt::ReturnValue(e) => {
            let _ = writeln!(out, "return {};", expr_to_string(e));
        }
    }
}

/// Renders an expression (fully parenthesized, so precedence is
/// preserved on re-parse).
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Int(v) if *v < 0 => format!("(0 - {})", -(*v as i128)),
        Expr::Int(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Index(n, idx) => format!("{n}[{}]", expr_to_string(idx)),
        Expr::Unary(UnOp::Neg, a) => format!("(-{})", expr_to_string(a)),
        Expr::Unary(UnOp::Not, a) => format!("(!{})", expr_to_string(a)),
        Expr::Binary(op, a, b) => format!(
            "({} {} {})",
            expr_to_string(a),
            op_symbol(*op),
            expr_to_string(b)
        ),
        Expr::Call(n, args) => {
            let parts: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("{n}({})", parts.join(", "))
        }
    }
}

fn op_symbol(op: BinOp) -> &'static str {
    op.symbol()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::parser::parse;

    /// Structural equality modulo literal representation: `-5` may
    /// round-trip as `(0 - 5)`. Compare by evaluating instead for
    /// expressions with negative literals; the corpus avoids them, so
    /// direct equality holds there.
    #[test]
    fn corpus_round_trips() {
        for (name, ctor) in corpus::all() {
            let (p, _) = ctor();
            let src = to_source(&p);
            let reparsed =
                parse(&src).unwrap_or_else(|e| panic!("{name}: reparse failed: {e}\n{src}"));
            assert_eq!(p, reparsed, "{name} round-trip mismatch:\n{src}");
        }
    }

    #[test]
    fn lexer_programs_round_trip() {
        // Exercised from the lang side via source strings directly.
        let src = r#"
            native h/2;
            program t(a: array[3], x: int) {
                let acc = 0;
                let tmp[2];
                while (acc < 10) {
                    acc = acc + h(a[0], x);
                    tmp[1] = acc * 2;
                    if (acc == 7 || !(x <= 0) && acc != 3) {
                        error(2);
                    } else {
                        a[1] = a[2] / 2 % 3;
                    }
                }
                return;
            }
        "#;
        let p = parse(src).unwrap();
        let round = parse(&to_source(&p)).unwrap();
        assert_eq!(p, round);
    }

    #[test]
    fn expr_rendering() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Int(1)),
        );
        assert_eq!(expr_to_string(&e), "(x + 1)");
        assert_eq!(expr_to_string(&Expr::Int(-3)), "(0 - 3)");
        let not = Expr::Unary(
            UnOp::Not,
            Box::new(Expr::Binary(
                BinOp::Eq,
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Int(0)),
            )),
        );
        assert_eq!(expr_to_string(&not), "(!(x == 0))");
    }

    #[test]
    fn negative_literal_semantics_preserved() {
        let src = "program t(x: int) { if (x == -5) { error(1); } return; }";
        let p = parse(src).unwrap();
        let round = parse(&to_source(&p)).unwrap();
        // Structure differs ((0 - 5) vs -5) but behaviour is identical.
        use crate::interp::{run, InputVector, NativeRegistry};
        let n = NativeRegistry::new();
        for v in [-5i64, 0, 5] {
            let (a, _) = run(&p, &n, &InputVector::new(vec![v]), 100);
            let (b, _) = run(&round, &n, &InputVector::new(vec![v]), 100);
            assert_eq!(a, b, "v={v}");
        }
    }
}
