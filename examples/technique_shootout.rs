//! Side-by-side comparison of all four techniques on the whole paper
//! corpus: the summary table behind Sections 3–5.
//!
//! ```text
//! cargo run --release --example technique_shootout
//! ```

use higher_order_testgen::core::{comparison_table, Driver, DriverConfig, Technique};
use hotg_lang::corpus;

fn main() {
    for (name, ctor) in corpus::all() {
        let (program, natives) = ctor();
        let width = program.input_width();
        let config = DriverConfig {
            max_runs: 40,
            ..DriverConfig::with_initial(vec![5; width])
        };
        let reports: Vec<_> = Technique::ALL
            .iter()
            .map(|&t| Driver::new(&program, &natives, config.clone()).run(t))
            .collect();
        println!("== {name} ==");
        print!("{}", comparison_table(&reports));
        println!();
    }
}
