//! Deterministic merging of shard event streams.
//!
//! A sharded campaign produces one event stream per shard (each shard's
//! durable trace — its checkpoint and interchange format) plus the
//! coordinator's canonical stream. Both merges live here:
//!
//! * **online** — the coordinator collects each generation's per-target
//!   [`ShardBlock`]s from the shard schedulers and [`interleave`]s them
//!   back into canonical target order before re-emitting, so
//!   [`fold_report`](crate::fold_report) and every sink observe exactly
//!   the stream a single-shard run would have emitted;
//! * **offline** — [`merge_shard_streams`] folds N recorded shard
//!   streams into one canonical stream after the fact, using the
//!   canonical ordinals stamped into
//!   [`CampaignEvent::TargetScheduled`]. N shard traces alone are
//!   enough to reconstruct the canonical stream (minus campaign-level
//!   telemetry that lives outside any shard).
//!
//! [`outcome_block`] is the shared emission-order truth: the scheduler's
//! merge step, the shard schedulers, and the resume replay's
//! verification gate all derive a target's event block from it, so the
//! three can never drift apart.

use super::outcome::{Job, TargetOutcome, WorkerRun};
use crate::chaos::FaultSite;
use crate::events::CampaignEvent;
use crate::report::Origin;

/// The event unit one executed run contributes to the stream: optional
/// static-pruning count, optional injected interpreter fault, optional
/// origin announcement, then the record. Shared by the seed phase
/// ([`Engine::merge_run`](super::Engine::merge_run)) and
/// [`outcome_block`].
pub(crate) fn run_unit(run: &WorkerRun) -> Vec<CampaignEvent> {
    let mut unit = Vec::new();
    if run.pruned_static > 0 {
        unit.push(CampaignEvent::TargetsPrunedStatic {
            count: run.pruned_static,
        });
    }
    if run.injected_fault {
        unit.push(CampaignEvent::FaultInjected {
            site: FaultSite::InterpFault,
            count: 1,
        });
    }
    match &run.record.origin {
        Origin::Probe { target } => unit.push(CampaignEvent::ProbeRun { target: *target }),
        Origin::Solved { target } | Origin::Strategy { target, .. } => {
            unit.push(CampaignEvent::TargetSolved { target: *target });
        }
        _ => {}
    }
    unit.push(CampaignEvent::RunExecuted {
        record: Box::new(run.record.clone()),
    });
    unit
}

/// The event sequence the merge step emits for one target's outcome,
/// including the closing [`CampaignEvent::TargetClosed`]: header
/// counters in fixed order, the per-site fault header, fault/degradation
/// announcements, then one unit per executed run.
pub(crate) fn outcome_block(job: &Job, out: &TargetOutcome) -> Vec<CampaignEvent> {
    let mut block = Vec::new();
    if out.solver_calls > 0 {
        block.push(CampaignEvent::SolverQueries {
            count: out.solver_calls,
        });
    }
    if out.rejected_targets > 0 {
        block.push(CampaignEvent::TargetsRejected {
            count: out.rejected_targets,
        });
    }
    if out.solver_errors > 0 {
        block.push(CampaignEvent::SolverErrors {
            count: out.solver_errors,
        });
    }
    if out.budget_escalations > 0 {
        block.push(CampaignEvent::BudgetEscalations {
            count: out.budget_escalations,
        });
    }
    for (site, count) in out.faults.per_site() {
        if count > 0 {
            block.push(CampaignEvent::FaultInjected { site, count });
        }
    }
    if out.faulted {
        block.push(CampaignEvent::TargetFaulted { target: job.id });
    }
    if !out.degradations.is_empty() {
        block.push(CampaignEvent::TargetDegraded {
            target: job.id,
            rungs: out.degradations.clone(),
        });
    }
    for run in &out.runs {
        block.extend(run_unit(run));
    }
    block.push(CampaignEvent::TargetClosed { target: job.id });
    block
}

/// One processed target handed back by a shard scheduler: its canonical
/// position within the generation, the event block the shard emitted
/// into its own trace, and the outcome whose state effects the
/// coordinator still has to fold.
pub(crate) struct ShardBlock {
    /// The target's position in the generation's canonical job order.
    pub(crate) ordinal: usize,
    /// The block events, exactly as the shard recorded them
    /// ([`outcome_block`] output).
    pub(crate) events: Vec<CampaignEvent>,
    /// The outcome, for [`CampaignState::fold_outcome`].
    ///
    /// [`CampaignState::fold_outcome`]: super::state::CampaignState::fold_outcome
    pub(crate) outcome: TargetOutcome,
}

/// Interleaves each shard's blocks back into canonical generation order.
/// The ordinals must partition `0..width` exactly — the partitioner
/// assigns every job to exactly one shard, so anything else is a merge
/// bug, reported rather than silently reordered.
pub(crate) fn interleave(
    per_shard: Vec<Vec<ShardBlock>>,
    width: usize,
) -> Result<Vec<ShardBlock>, MergeError> {
    let mut slots: Vec<Option<ShardBlock>> = (0..width).map(|_| None).collect();
    for blocks in per_shard {
        for b in blocks {
            if b.ordinal >= width {
                return Err(MergeError::OrdinalOutOfRange {
                    ordinal: b.ordinal,
                    width,
                });
            }
            if slots[b.ordinal].is_some() {
                return Err(MergeError::DuplicateOrdinal { ordinal: b.ordinal });
            }
            let ordinal = b.ordinal;
            slots[ordinal] = Some(b);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.ok_or(MergeError::MissingOrdinal { ordinal: i }))
        .collect()
}

/// Why shard streams could not be merged back into a canonical stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No streams were given.
    NoStreams,
    /// A stream did not begin with `CampaignStarted` (or streams carry
    /// different campaign preambles).
    PreambleMismatch,
    /// The streams disagree on which generation comes next.
    GenerationDesync,
    /// A stream ended before its campaign finished (crashed shard —
    /// resume it first, then merge).
    TruncatedStream {
        /// Index of the truncated stream.
        shard: usize,
    },
    /// A canonical ordinal outside the generation's width.
    OrdinalOutOfRange {
        /// The offending ordinal.
        ordinal: usize,
        /// The generation's canonical width.
        width: usize,
    },
    /// Two shards claimed the same canonical ordinal.
    DuplicateOrdinal {
        /// The doubly-claimed ordinal.
        ordinal: usize,
    },
    /// No shard claimed a canonical ordinal.
    MissingOrdinal {
        /// The unclaimed ordinal.
        ordinal: usize,
    },
    /// A shard stream was structurally malformed (e.g. a block without
    /// its `TargetClosed` delimiter).
    Malformed {
        /// Index of the malformed stream.
        shard: usize,
    },
    /// A shard trace file could not be recovered.
    Trace(String),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::NoStreams => write!(f, "no shard streams to merge"),
            MergeError::PreambleMismatch => write!(f, "shard streams carry different preambles"),
            MergeError::GenerationDesync => write!(f, "shard streams disagree on generations"),
            MergeError::TruncatedStream { shard } => {
                write!(f, "shard {shard} stream is truncated (resume it first)")
            }
            MergeError::OrdinalOutOfRange { ordinal, width } => {
                write!(f, "ordinal {ordinal} outside generation width {width}")
            }
            MergeError::DuplicateOrdinal { ordinal } => {
                write!(f, "ordinal {ordinal} claimed by two shards")
            }
            MergeError::MissingOrdinal { ordinal } => {
                write!(f, "ordinal {ordinal} claimed by no shard")
            }
            MergeError::Malformed { shard } => write!(f, "shard {shard} stream is malformed"),
            MergeError::Trace(e) => write!(f, "shard trace unreadable: {e}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Cursor over one shard stream during the offline merge.
struct Cursor<'a> {
    shard: usize,
    events: &'a [CampaignEvent],
    pos: usize,
}

/// One generation section of a shard stream, as parsed by
/// [`Cursor::generation`]: the generation index, the shard's
/// `TargetScheduled` events, and its outcome blocks.
type GenerationSection<'a> = (usize, Vec<&'a CampaignEvent>, Vec<ShardBlock>);

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a CampaignEvent> {
        self.events.get(self.pos)
    }

    /// The shard's next generation section: `(index, scheduled, blocks)`,
    /// or `None` once the cursor reached the shard's tail.
    fn generation(&mut self) -> Result<Option<GenerationSection<'a>>, MergeError> {
        let Some(CampaignEvent::GenerationStarted { index, width }) = self.peek() else {
            return Ok(None);
        };
        let (index, width) = (*index, *width);
        self.pos += 1;
        let mut scheduled = Vec::new();
        let mut ordinals = Vec::new();
        for _ in 0..width {
            match self.peek() {
                Some(e @ CampaignEvent::TargetScheduled { ordinal, .. }) => {
                    scheduled.push(e);
                    ordinals.push(*ordinal);
                    self.pos += 1;
                }
                _ => return Err(MergeError::Malformed { shard: self.shard }),
            }
        }
        let mut blocks = Vec::new();
        for &ordinal in &ordinals {
            let start = self.pos;
            loop {
                match self.peek() {
                    Some(CampaignEvent::TargetClosed { .. }) => {
                        self.pos += 1;
                        break;
                    }
                    Some(
                        CampaignEvent::GenerationStarted { .. }
                        | CampaignEvent::CampaignStarted { .. }
                        | CampaignEvent::CampaignFinished,
                    )
                    | None => return Err(MergeError::Malformed { shard: self.shard }),
                    Some(_) => self.pos += 1,
                }
            }
            blocks.push(ShardBlock {
                ordinal,
                events: self.events[start..self.pos].to_vec(),
                outcome: TargetOutcome::default(),
            });
        }
        Ok(Some((index, scheduled, blocks)))
    }
}

/// Folds N recorded shard streams into one canonical
/// [`CampaignEvent`] order: the shared campaign preamble (seed phase)
/// verbatim, every generation's targets re-interleaved by their
/// canonical ordinals, the shard cache totals summed, and one closing
/// `CampaignFinished`.
///
/// The result folds ([`fold_report`](crate::fold_report)) to the same
/// canonical report as the coordinator's stream for a campaign that ran
/// to frontier exhaustion. Campaign-level telemetry that no shard owns
/// (`ExecStats`, session/backend stats, trace-fault tails) is omitted —
/// all of it is announcement-only or excluded from the canonical
/// report.
pub fn merge_shard_streams(
    streams: &[Vec<CampaignEvent>],
) -> Result<Vec<CampaignEvent>, MergeError> {
    if streams.is_empty() {
        return Err(MergeError::NoStreams);
    }
    // Preamble: everything before the first generation (or the tail, for
    // a campaign that never scheduled a generation). Identical across
    // shards by construction — the coordinator broadcasts it.
    let preamble_len = |s: &[CampaignEvent]| {
        s.iter()
            .position(|e| {
                matches!(
                    e,
                    CampaignEvent::GenerationStarted { .. }
                        | CampaignEvent::CacheStats { .. }
                        | CampaignEvent::CampaignFinished
                )
            })
            .unwrap_or(s.len())
    };
    let plen = preamble_len(&streams[0]);
    if !matches!(
        streams[0].first(),
        Some(CampaignEvent::CampaignStarted { .. })
    ) {
        return Err(MergeError::PreambleMismatch);
    }
    for s in streams {
        if preamble_len(s) != plen || s[..preamble_len(s)] != streams[0][..plen] {
            return Err(MergeError::PreambleMismatch);
        }
    }
    let mut merged: Vec<CampaignEvent> = streams[0][..plen].to_vec();
    let mut cursors: Vec<Cursor<'_>> = streams
        .iter()
        .enumerate()
        .map(|(shard, s)| Cursor {
            shard,
            events: s,
            pos: plen,
        })
        .collect();

    loop {
        let mut sections = Vec::with_capacity(cursors.len());
        for c in &mut cursors {
            sections.push(c.generation()?);
        }
        if sections.iter().all(Option::is_none) {
            break;
        }
        if sections.iter().any(Option::is_none) {
            return Err(MergeError::GenerationDesync);
        }
        let sections: Vec<_> = sections.into_iter().flatten().collect();
        let index = sections[0].0;
        if sections.iter().any(|(i, _, _)| *i != index) {
            return Err(MergeError::GenerationDesync);
        }
        let width: usize = sections.iter().map(|(_, s, _)| s.len()).sum();
        merged.push(CampaignEvent::GenerationStarted { index, width });
        let mut scheduled: Vec<&CampaignEvent> = sections
            .iter()
            .flat_map(|(_, s, _)| s.iter().copied())
            .collect();
        scheduled.sort_by_key(|e| match e {
            CampaignEvent::TargetScheduled { ordinal, .. } => *ordinal,
            _ => usize::MAX,
        });
        merged.extend(scheduled.into_iter().cloned());
        let blocks = interleave(sections.into_iter().map(|(_, _, b)| b).collect(), width)?;
        for b in blocks {
            merged.extend(b.events);
        }
    }

    // Tail: shard cache totals sum to the canonical totals (the
    // coordinator issues no solver queries of its own). Each stream must
    // close properly; a missing `CampaignFinished` means a crashed
    // shard.
    let (mut hits, mut misses) = (0u64, 0u64);
    for c in &mut cursors {
        let mut finished = false;
        while let Some(e) = c.peek() {
            match e {
                CampaignEvent::CacheStats { hits: h, misses: m } => {
                    hits += h;
                    misses += m;
                }
                CampaignEvent::CampaignFinished => finished = true,
                _ => {}
            }
            c.pos += 1;
        }
        if !finished {
            return Err(MergeError::TruncatedStream { shard: c.shard });
        }
    }
    merged.push(CampaignEvent::CacheStats { hits, misses });
    merged.push(CampaignEvent::CampaignFinished);
    Ok(merged)
}

/// [`merge_shard_streams`] over the durable trace files of a finished
/// sharded campaign (each recovered with the usual CRC/length framing
/// checks). A truncated or incomplete trace is refused — resume the
/// campaign first, which completes every shard trace.
pub fn merge_shard_traces(paths: &[std::path::PathBuf]) -> Result<Vec<CampaignEvent>, MergeError> {
    let mut streams = Vec::with_capacity(paths.len());
    for (shard, p) in paths.iter().enumerate() {
        let rec = crate::trace::recover(p).map_err(|e| MergeError::Trace(e.to_string()))?;
        if !rec.complete {
            return Err(MergeError::TruncatedStream { shard });
        }
        streams.push(rec.events);
    }
    merge_shard_streams(&streams)
}
