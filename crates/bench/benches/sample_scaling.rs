//! Ablation for the §6 implementability discussion: validity-check cost
//! as the recorded sample table grows ("capturing at execution time all
//! observed input-output value pairs is problematic").

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hotg_logic::{Atom, Formula, Signature, Sort, Term};
use hotg_solver::{Samples, ValidityChecker};

fn bench_sample_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("validity_vs_samples");
    for &n in &[4usize, 16, 64] {
        let mut sig = Signature::new();
        let x = sig.declare_var("x", Sort::Int);
        let y = sig.declare_var("y", Sort::Int);
        let h = sig.declare_func("hash", 1);
        let mut samples = Samples::new();
        for k in 0..n as i64 {
            samples.record(h, vec![k], (k * 7919 + 12345) % 100_000);
        }
        // Target: invert hash to the output of sample n/2.
        let want = (n as i64 / 2 * 7919 + 12345) % 100_000;
        let pc = Formula::atom(Atom::eq(Term::app(h, vec![Term::var(y)]), Term::int(want)))
            .and(Formula::atom(Atom::eq(Term::var(x), Term::int(1))));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let checker = ValidityChecker::new();
            b.iter(|| black_box(checker.check(&[x, y], &samples, &pc).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sample_scaling
}
criterion_main!(benches);
