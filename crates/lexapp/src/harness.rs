//! Campaign harness for the §7 lexer application: runs all four
//! techniques on the keyword-recognition parsers and reports how deep
//! into the parser each technique gets.

use crate::programs;
use hotg_core::{comparison_table, Driver, DriverConfig, Report, Technique};
use hotg_lang::{NativeRegistry, Program};

/// Which lexer program to exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LexerVariant {
    /// Fixed-width three-token parser (`if then end`).
    Fixed,
    /// Flex-style scanning two-token parser (`if end`).
    Scanning,
}

impl LexerVariant {
    /// Program constructor for this variant.
    pub fn program(self) -> (Program, NativeRegistry) {
        match self {
            LexerVariant::Fixed => programs::keyword_parser(),
            LexerVariant::Scanning => programs::scanning_parser(),
        }
    }

    /// The deepest error code (full parse) of this variant.
    pub fn full_parse_code(self) -> i64 {
        match self {
            LexerVariant::Fixed => 3,
            LexerVariant::Scanning => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LexerVariant::Fixed => "keyword_parser",
            LexerVariant::Scanning => "scanning_parser",
        }
    }
}

/// Result of one technique's campaign on a lexer variant.
#[derive(Clone, Debug)]
pub struct LexerOutcome {
    /// The underlying search report.
    pub report: Report,
    /// Keyword depth reached: the largest error code triggered (each code
    /// `k` requires recognizing `k` hashed keywords).
    pub depth: i64,
    /// Whether the full sentence was parsed.
    pub full_parse: bool,
}

/// Default configuration for lexer campaigns: byte-valued random inputs,
/// all-`'a'` initial buffer.
pub fn lexer_config(program: &Program, max_runs: usize) -> DriverConfig {
    DriverConfig {
        max_runs,
        random_range: (0, 127),
        initial_inputs: Some(vec![97; program.input_width()]),
        ..DriverConfig::default()
    }
}

/// Runs one technique on one variant.
pub fn campaign(variant: LexerVariant, technique: Technique, max_runs: usize) -> LexerOutcome {
    let (program, natives) = variant.program();
    let config = lexer_config(&program, max_runs);
    let driver = Driver::new(&program, &natives, config);
    let report = driver.run(technique);
    let depth = report.errors.keys().copied().max().unwrap_or(0);
    LexerOutcome {
        full_parse: depth >= variant.full_parse_code(),
        report,
        depth,
    }
}

/// Runs all four techniques on a variant and renders the §7 comparison
/// table (one row per technique, plus the keyword depth column).
pub fn full_comparison(variant: LexerVariant, max_runs: usize) -> (Vec<LexerOutcome>, String) {
    let outcomes: Vec<LexerOutcome> = Technique::ALL
        .iter()
        .map(|&t| campaign(variant, t, max_runs))
        .collect();
    let mut table = format!("== {} ==\n", variant.name());
    table.push_str(&comparison_table(
        &outcomes
            .iter()
            .map(|o| o.report.clone())
            .collect::<Vec<_>>(),
    ));
    table.push_str("\nkeyword depth reached: ");
    for o in &outcomes {
        table.push_str(&format!("{}={} ", o.report.technique.name(), o.depth));
    }
    table.push('\n');
    (outcomes, table)
}

/// Runs the higher-order technique on the branching-grammar parser and
/// returns the report plus whether both productions were fully parsed.
pub fn grammar_campaign(max_runs: usize) -> (Report, bool, bool) {
    let (program, natives) = programs::grammar_parser();
    let config = lexer_config(&program, max_runs);
    let driver = Driver::new(&program, &natives, config);
    let report = driver.run(Technique::HigherOrder);
    let if_prod = report.found_error(10);
    let while_prod = report.found_error(11);
    (report, if_prod, while_prod)
}

/// Runs the higher-order technique on the collision lexer and reports
/// which of the two collision-distinguished errors were reached.
pub fn collision_campaign(max_runs: usize) -> (Report, bool, bool) {
    let (program, natives) = programs::collision_lexer();
    let config = lexer_config(&program, max_runs);
    let driver = Driver::new(&program, &natives, config);
    let report = driver.run(Technique::HigherOrder);
    let impostor = report.found_error(1);
    let genuine = report.found_error(2);
    (report, genuine, impostor)
}

/// Runs the higher-order technique on the hard-coded-hash parser,
/// optionally seeding the session with one well-formed input (§7, last
/// paragraph). Returns the report and the keyword depth reached.
pub fn hardcoded_campaign(seeded: bool, max_runs: usize) -> (Report, i64) {
    let (program, natives) = programs::hardcoded_parser();
    let mut config = lexer_config(&program, max_runs);
    if seeded {
        config.seed_corpus = vec![programs::encode_fixed(["if", "then", "end"])];
    }
    let driver = Driver::new(&program, &natives, config);
    let report = driver.run(Technique::HigherOrder);
    let depth = report.errors.keys().copied().max().unwrap_or(0);
    (report, depth)
}

/// Runs the higher-order *compositional* technique on the
/// `findsym`-wrapper parser (hash values hard-coded inside the wrapper),
/// optionally seeded with a **scrambled** sentence `then end if`: it
/// samples every keyword's hash without triggering any parse progress,
/// so reaching the deep error requires *synthesizing* the correct
/// keyword order from the summarized wrapper and the samples. Returns
/// the report and keyword depth.
pub fn findsym_campaign(seeded: bool, max_runs: usize) -> (Report, i64) {
    let (program, natives) = programs::findsym_parser();
    let mut config = lexer_config(&program, max_runs);
    if seeded {
        config.seed_corpus = vec![programs::encode_fixed(["then", "end", "if"])];
    }
    let driver = Driver::new(&program, &natives, config);
    let report = driver.run(Technique::HigherOrderCompositional);
    let depth = report.errors.keys().copied().max().unwrap_or(0);
    (report, depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_order_drives_through_fixed_lexer() {
        let out = campaign(LexerVariant::Fixed, Technique::HigherOrder, 60);
        assert!(
            out.full_parse,
            "HOTG must reach the full parse: {}",
            out.report
        );
        assert_eq!(out.depth, 3);
    }

    #[test]
    fn dart_stuck_at_lexer_fixed() {
        for technique in [
            Technique::DartUnsound,
            Technique::DartSound,
            Technique::DartSoundDelayed,
        ] {
            let out = campaign(LexerVariant::Fixed, technique, 60);
            assert_eq!(
                out.depth, 0,
                "{technique} must not invert the hash: {}",
                out.report
            );
        }
    }

    #[test]
    fn random_stuck_at_lexer_fixed() {
        let out = campaign(LexerVariant::Fixed, Technique::Random, 60);
        assert_eq!(out.depth, 0, "{}", out.report);
    }

    #[test]
    fn higher_order_drives_through_scanning_lexer() {
        let out = campaign(LexerVariant::Scanning, Technique::HigherOrder, 80);
        assert!(
            out.depth >= 1,
            "HOTG must recognize at least the first keyword: {}",
            out.report
        );
    }

    #[test]
    fn grammar_both_productions_parsed() {
        let (report, if_prod, while_prod) = grammar_campaign(80);
        assert!(if_prod, "`if then end` production: {report}");
        assert!(while_prod, "`while then end` production: {report}");
    }

    #[test]
    fn collision_inversion_reaches_both_preimages() {
        let (report, genuine, impostor) = collision_campaign(40);
        assert!(
            genuine,
            "must synthesize the genuine keyword `aa`: {report}"
        );
        assert!(
            impostor,
            "must synthesize the colliding impostor `efa`: {report}"
        );
    }

    #[test]
    fn findsym_compositional_with_scrambled_seed() {
        let (report, depth) = findsym_campaign(true, 60);
        // The scrambled seed itself parses nothing…
        assert!(
            !report.runs[1].outcome.is_error(),
            "the seed must not trigger an error: {report}"
        );
        // …yet the campaign reassembles `if then end` from the samples.
        assert_eq!(
            depth, 3,
            "summarized findsym + scrambled seed must reach the full parse: {report}"
        );
    }

    #[test]
    fn findsym_compositional_without_seed_is_stuck() {
        let (report, depth) = findsym_campaign(false, 40);
        assert_eq!(depth, 0, "no hash preimages observed: {report}");
    }

    #[test]
    fn hardcoded_needs_a_representative_seed() {
        // Without a well-formed seed there is nothing to invert: the
        // keyword hashes were never observed.
        let (report, depth) = hardcoded_campaign(false, 40);
        assert_eq!(depth, 0, "no samples, no inversion: {report}");
        // With one well-formed input, the findsym observations populate
        // the table and the search walks back through every branch.
        let (report, depth) = hardcoded_campaign(true, 40);
        assert_eq!(
            depth, 3,
            "seeded session must reach the full parse: {report}"
        );
    }

    #[test]
    fn comparison_table_renders() {
        let (outcomes, table) = full_comparison(LexerVariant::Fixed, 25);
        assert_eq!(outcomes.len(), Technique::ALL.len());
        assert!(table.contains("keyword_parser"));
        assert!(table.contains("higher-order"));
        assert!(table.contains("keyword depth"));
    }
}
