//! The public campaign driver: a thin façade over the strategy-pluggable
//! [`engine`](crate::engine).
//!
//! The search is generational (breadth-first over branch-flip targets, as
//! in SAGE): every executed run contributes one target per negatable
//! branch entry of its path constraint; targets are deduplicated by their
//! expected branch path.
//!
//! * DART techniques solve `ALT(pc)` with a *satisfiability* query and
//!   turn the model into inputs (unconstrained inputs keep the parent
//!   run's values, as in the original DART).
//! * The higher-order technique checks *validity* of
//!   `POST(ALT(pc)) = ∃X : A ⇒ ALT(pc)` and interprets the resulting
//!   strategy against the recorded samples, running intermediate probe
//!   executions when a needed application value is unknown (multi-step
//!   test generation, §5.3 Example 7).
//!
//! Each [`Technique`] maps to one strategy object
//! (`crate::strategy::for_technique`); the engine runs the campaign as a
//! loop over the strategy and emits a [`CampaignEvent`](crate::CampaignEvent)
//! stream from which the returned [`Report`] is folded. See the engine
//! module docs for the parallel generation structure and the determinism
//! argument.

use crate::config::{DriverConfig, Technique};
use crate::engine::{Engine, ResumeData};
use crate::events::{fold_report, EventSink, NullSink};
use crate::report::Report;
use crate::strategy;
use crate::trace::{
    program_digest, recover, shard_digest, shard_trace_path, Recovery, RecoveryReport, ResumeError,
};
use hotg_analysis::{analyze, AnalysisResult};
use hotg_concolic::ConcolicContext;
use hotg_lang::{CompiledProgram, NativeRegistry, Program};
use hotg_logic::LogicArena;
use std::sync::Arc;

/// A test-generation campaign on one program.
#[derive(Debug)]
pub struct Driver<'p> {
    program: &'p Program,
    natives: &'p NativeRegistry,
    ctx: ConcolicContext,
    analysis: AnalysisResult,
    config: DriverConfig,
    /// The campaign's term/formula arena. **Per-driver, never global**:
    /// every solver instance of this driver's campaigns interns through
    /// it, and two concurrent drivers in one process get disjoint id
    /// spaces and share no interned allocations.
    arena: Arc<LogicArena>,
    /// The program lowered to bytecode, compiled once per driver when
    /// [`DriverConfig::bytecode`] is on. `None` when the fast path is
    /// disabled or the program fails the static checker — campaigns then
    /// run on the reference tree-walkers with identical results.
    compiled: Option<CompiledProgram>,
    /// Why compilation failed when `compiled` is `None` despite
    /// [`DriverConfig::bytecode`]: announced per campaign as
    /// [`CampaignEvent::BytecodeFallback`](crate::CampaignEvent) and
    /// counted in [`Report::bytecode_fallbacks`], so the tree-walker
    /// fallback is never silent.
    compile_error: Option<String>,
}

impl<'p> Driver<'p> {
    /// Creates a driver for a program.
    pub fn new(
        program: &'p Program,
        natives: &'p NativeRegistry,
        config: DriverConfig,
    ) -> Driver<'p> {
        let (compiled, compile_error) = if config.bytecode {
            match hotg_lang::compile(program, natives) {
                Ok(cp) => (Some(cp), None),
                Err(e) => (None, Some(e.to_string())),
            }
        } else {
            (None, None)
        };
        Driver {
            program,
            natives,
            ctx: ConcolicContext::new(program),
            analysis: analyze(program),
            config,
            arena: Arc::new(LogicArena::new()),
            compiled,
            compile_error,
        }
    }

    /// The symbolic context (signature, input variables).
    pub fn ctx(&self) -> &ConcolicContext {
        &self.ctx
    }

    /// The static analysis results used as the search oracle.
    pub fn analysis(&self) -> &AnalysisResult {
        &self.analysis
    }

    /// The driver-owned term/formula arena.
    pub fn arena(&self) -> &Arc<LogicArena> {
        &self.arena
    }

    /// The once-per-driver compiled program the campaign VMs execute;
    /// `None` when [`DriverConfig::bytecode`] is off or the program did
    /// not compile (tree-walker fallback).
    pub fn compiled(&self) -> Option<&CompiledProgram> {
        self.compiled.as_ref()
    }

    /// Runs a campaign with the given technique and returns its report.
    pub fn run(&self, technique: Technique) -> Report {
        self.run_with_sink(technique, &mut NullSink)
    }

    /// Runs a campaign, streaming every [`CampaignEvent`] into `sink`
    /// (in addition to the report fold and the optional
    /// [`DriverConfig::event_trace`] file). The returned [`Report`] is
    /// exactly the fold of the emitted stream, plus wall-clock
    /// [`Report::elapsed`].
    ///
    /// [`CampaignEvent`]: crate::CampaignEvent
    pub fn run_with_sink(&self, technique: Technique, sink: &mut dyn EventSink) -> Report {
        let start = std::time::Instant::now();
        let mut report = self.engine().run(strategy::for_technique(technique), sink);
        report.elapsed = start.elapsed();
        report
    }

    fn engine(&self) -> Engine<'_> {
        Engine {
            program: self.program,
            natives: self.natives,
            ctx: &self.ctx,
            analysis: &self.analysis,
            config: &self.config,
            arena: &self.arena,
            compiled: self.compiled.as_ref(),
            compile_error: self.compile_error.as_deref(),
            exec: Default::default(),
        }
    }

    /// Resumes an interrupted campaign from the durable trace configured
    /// in [`DriverConfig::trace`] and returns the finished report —
    /// bit-identical (modulo wall-clock [`Report::elapsed`] and the
    /// thread-schedule-dependent cache hit/miss split) to the report an
    /// uninterrupted run would have produced.
    pub fn resume(&self, technique: Technique) -> Result<Report, ResumeError> {
        self.resume_with_sink(technique, &mut NullSink)
            .map(|r| r.report)
    }

    /// [`resume`](Driver::resume), plus a [`RecoveryReport`] describing
    /// what was salvaged from the trace file, and with every event of
    /// the resumed campaign — replayed and fresh alike — streamed into
    /// `sink`.
    ///
    /// Recovery salvages the longest valid prefix of the trace (frames
    /// are length- and CRC32-checked; a torn tail or corrupt frame ends
    /// the prefix and is reported, never panicked on). The header is
    /// refused with [`ResumeError::HeaderMismatch`] unless its
    /// technique, program digest, and [`DriverConfig::resume_digest`]
    /// all match this driver — a salvaged prefix only replays
    /// deterministically under the configuration that recorded it. A
    /// trace that already ends in `CampaignFinished` short-circuits: the
    /// report is folded straight from the recorded events and the file
    /// is left untouched.
    pub fn resume_with_sink(
        &self,
        technique: Technique,
        sink: &mut dyn EventSink,
    ) -> Result<Resumed, ResumeError> {
        let start = std::time::Instant::now();
        let tc = self
            .config
            .trace
            .as_ref()
            .ok_or(ResumeError::NoTraceConfigured)?;
        let sharded = self.config.shards > 1;
        let rec = match recover(&tc.path) {
            Ok(rec) => rec,
            // A sharded campaign's real checkpoints are its shard
            // traces: a canonical trace that is lost or unreadable only
            // forfeits the complete-trace fast path below.
            Err(_) if sharded => return self.resume_sharded(technique, sink, start),
            Err(e) => return Err(e),
        };
        if rec.header.technique != technique {
            return Err(ResumeError::HeaderMismatch {
                field: "technique",
                expected: rec.header.technique.name().to_string(),
                found: technique.name().to_string(),
            });
        }
        let pdigest = program_digest(self.program);
        if rec.header.program_digest != pdigest {
            return Err(ResumeError::HeaderMismatch {
                field: "program_digest",
                expected: format!("{:016x}", rec.header.program_digest),
                found: format!("{pdigest:016x}"),
            });
        }
        let cdigest = self.config.resume_digest();
        if rec.header.config_digest != cdigest {
            return Err(ResumeError::HeaderMismatch {
                field: "config_digest",
                expected: format!("{:016x}", rec.header.config_digest),
                found: format!("{cdigest:016x}"),
            });
        }
        let frames_salvaged = rec.events.len();
        if rec.complete {
            // The trace records a finished campaign: the report is its
            // fold. Nothing re-runs and the file is left untouched.
            let mut report = fold_report(&rec.events);
            for event in &rec.events {
                let _ = sink.emit(event);
            }
            report.elapsed = start.elapsed();
            return Ok(Resumed {
                report,
                recovery: RecoveryReport {
                    frames_salvaged,
                    events_replayed: frames_salvaged,
                    bytes_discarded: rec.bytes_discarded,
                    frames_discarded: rec.frames_discarded,
                    complete: true,
                    damage: rec.damage,
                },
            });
        }
        if sharded {
            // An incomplete canonical trace of a sharded campaign is
            // discarded (it is rewritten live on the resumed run); the
            // shard traces are the checkpoints replay works from.
            return self.resume_sharded(technique, sink, start);
        }
        let resume = ResumeData {
            events: rec.events,
            ends: rec.ends,
            header_end: rec.header_end,
        };
        let (mut report, events_replayed) = self.engine().run_resumable(
            strategy::for_technique(technique),
            sink,
            Some(resume),
            Vec::new(),
        );
        report.elapsed = start.elapsed();
        Ok(Resumed {
            report,
            recovery: RecoveryReport {
                frames_salvaged,
                events_replayed,
                bytes_discarded: rec.bytes_discarded,
                frames_discarded: rec.frames_discarded,
                complete: false,
                damage: rec.damage,
            },
        })
    }

    /// Resumes a sharded campaign from its per-shard traces. Each shard
    /// trace is recovered and header-checked independently; a shard
    /// whose trace is lost outright simply re-runs live (its salvaged
    /// prefix is empty), while a header mismatch is refused — it means
    /// the trace belongs to a different campaign shape. The canonical
    /// trace is rewritten from scratch by the resumed run.
    fn resume_sharded(
        &self,
        technique: Technique,
        sink: &mut dyn EventSink,
        start: std::time::Instant,
    ) -> Result<Resumed, ResumeError> {
        let tc = self.config.trace.as_ref().expect("checked by caller");
        let shards = self.config.shards;
        let cdigest = self.config.resume_digest();
        let pdigest = program_digest(self.program);
        let mut frames_salvaged = 0;
        let mut bytes_discarded = 0;
        let mut frames_discarded = 0;
        let mut damage = None;
        let mut shard_resume: Vec<Option<ResumeData>> = Vec::with_capacity(shards);
        for i in 0..shards {
            let path = shard_trace_path(&tc.path, i, shards);
            let rec: Recovery = match recover(&path) {
                Ok(rec) => rec,
                // Lost shard checkpoint: the shard re-runs live.
                Err(ResumeError::Io(_)) => {
                    shard_resume.push(None);
                    continue;
                }
                Err(e) => return Err(e),
            };
            if rec.header.technique != technique {
                return Err(ResumeError::HeaderMismatch {
                    field: "technique",
                    expected: rec.header.technique.name().to_string(),
                    found: technique.name().to_string(),
                });
            }
            if rec.header.program_digest != pdigest {
                return Err(ResumeError::HeaderMismatch {
                    field: "program_digest",
                    expected: format!("{:016x}", rec.header.program_digest),
                    found: format!("{pdigest:016x}"),
                });
            }
            let expected = shard_digest(cdigest, i, shards);
            if rec.header.config_digest != expected {
                return Err(ResumeError::HeaderMismatch {
                    field: "config_digest",
                    expected: format!("{:016x}", rec.header.config_digest),
                    found: format!("{expected:016x}"),
                });
            }
            frames_salvaged += rec.events.len();
            bytes_discarded += rec.bytes_discarded;
            frames_discarded += rec.frames_discarded;
            if damage.is_none() {
                damage = rec.damage;
            }
            shard_resume.push(Some(ResumeData {
                events: rec.events,
                ends: rec.ends,
                header_end: rec.header_end,
            }));
        }
        let (mut report, events_replayed) = self.engine().run_resumable(
            strategy::for_technique(technique),
            sink,
            None,
            shard_resume,
        );
        report.elapsed = start.elapsed();
        Ok(Resumed {
            report,
            recovery: RecoveryReport {
                frames_salvaged,
                events_replayed,
                bytes_discarded,
                frames_discarded,
                complete: false,
                damage,
            },
        })
    }
}

/// Result of [`Driver::resume_with_sink`]: the finished report plus a
/// summary of what trace recovery salvaged and replay consumed.
#[derive(Debug)]
pub struct Resumed {
    /// The finished campaign report.
    pub report: Report,
    /// What was salvaged from the trace and how much of it replayed.
    pub recovery: RecoveryReport,
}
