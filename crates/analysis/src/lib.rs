//! Static analysis over `mini` programs: input taint, native-call
//! opacity, reachability and constancy — the *static* counterpart of the
//! paper's dynamic machinery, wired into the concolic driver as a
//! target-pruning and UF-placement oracle.
//!
//! Higher-order test generation (Godefroid, PLDI 2011) decides *at run
//! time* which unknown-function call sites need uninterpreted symbols
//! and which branches are worth flipping. A cheap whole-program abstract
//! interpretation answers a useful fragment of both questions *before*
//! the first execution:
//!
//! * [`AnalysisResult::taint_of`] over-approximates, per conditional
//!   site, which flat inputs the condition can depend on — a static
//!   superset of the free variables of the dynamic path-constraint
//!   conjunct (Theorem 2 only ever pins variables from this set).
//! * [`NativeSite`] classification: a native call whose arguments are
//!   statically constant has a single observable input/output pair, so
//!   its sample can be taken once, up front, and fed to the IOF table
//!   (Figure 3) without any symbolic machinery; dead sites need nothing.
//! * [`AnalysisResult::constancy_of`] marks branches as always-true /
//!   always-false via constant propagation and interval reasoning:
//!   flipping a statically-decided branch is unsatisfiable, so the
//!   driver drops such targets without a solver or validity query.
//! * [`lint`] turns the same facts into structured [`Diagnostic`]s
//!   (`HA###` codes) with a JSON encoding ([`json`]) used by the
//!   `hotg-lint` example binary.
//!
//! The analysis is *sound by over-approximation*: taint sets may be too
//! big (never too small), dead code may be reported live (never the
//! reverse), and constancy falls back to `Unknown`. The concolic
//! executor cross-checks the taint direction in debug builds.
//!
//! # Example
//!
//! ```
//! use hotg_analysis::{analyze, Constancy, SiteClass};
//! use hotg_lang::{parse, check, BranchId};
//!
//! let p = parse(
//!     "native h/1;
//!      program t(x: int) {
//!          let a = 5;
//!          if (a < 3) { error(1); }
//!          if (x == h(a)) { error(2); }
//!          return;
//!      }",
//! )
//! .unwrap();
//! check(&p).unwrap();
//! let r = analyze(&p);
//! assert_eq!(r.constancy_of(BranchId(0)), Constancy::AlwaysFalse);
//! assert_eq!(r.constancy_of(BranchId(1)), Constancy::Unknown);
//! assert_eq!(r.taint_of(BranchId(1)), &[0usize].into_iter().collect());
//! assert_eq!(r.native_sites()[0].class, SiteClass::ConstArgs(vec![5]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod fixpoint;
pub mod json;
pub mod lint;

pub use domain::{AbsVal, Constancy, Interval, Taint};
pub use fixpoint::{analyze, AnalysisResult, BranchFact, NativeSite, SiteClass};
pub use lint::lint;

// Re-exported so diagnostic consumers need only this crate.
pub use hotg_lang::{DiagCode, Diagnostic, Severity, Span, StmtId};

#[cfg(test)]
mod tests {
    use super::*;
    use hotg_lang::{check, corpus, parse, BranchId, Program};

    fn analyzed(src: &str) -> (Program, AnalysisResult) {
        let p = parse(src).unwrap();
        check(&p).unwrap();
        let r = analyze(&p);
        (p, r)
    }

    #[test]
    fn taint_tracks_data_flow() {
        let (_, r) = analyzed(
            "program t(x: int, y: int, z: int) {
                 let a = x + 1;
                 let b = a * 2;
                 if (b == y) { error(1); }
                 if (z > 0) { error(2); }
                 return;
             }",
        );
        assert_eq!(r.taint_of(BranchId(0)), &[0usize, 1].into_iter().collect());
        assert_eq!(r.taint_of(BranchId(1)), &[2usize].into_iter().collect());
    }

    #[test]
    fn taint_is_syntactic_not_semantic() {
        // `0 * x` is always 0 but the symbolic term mentions x: the
        // taint set must keep it.
        let (_, r) = analyzed(
            "program t(x: int) {
                 let a = 0 * x;
                 if (a == 0) { error(1); }
                 return;
             }",
        );
        assert_eq!(r.taint_of(BranchId(0)), &[0usize].into_iter().collect());
    }

    #[test]
    fn native_of_constant_is_untainted() {
        // h(5) is an unknown *constant*: branches on it depend only on x.
        let (_, r) = analyzed(
            "native h/1;
             program t(x: int) {
                 let c = h(5);
                 if (c == x) { error(1); }
                 return;
             }",
        );
        assert_eq!(r.taint_of(BranchId(0)), &[0usize].into_iter().collect());
        assert_eq!(r.native_sites()[0].class, SiteClass::ConstArgs(vec![5]));
    }

    #[test]
    fn array_reads_and_writes_summarized() {
        let (_, r) = analyzed(
            "program t(buf: array[3], x: int) {
                 let v = buf[1];
                 if (v == 7) { error(1); }
                 let w[2];
                 w[0] = x;
                 if (w[1] == 0) { error(2); }
                 return;
             }",
        );
        // Element reads over-approximate to the whole array.
        assert_eq!(
            r.taint_of(BranchId(0)),
            &[0usize, 1, 2].into_iter().collect()
        );
        // The local array absorbed x via the write.
        assert_eq!(r.taint_of(BranchId(1)), &[3usize].into_iter().collect());
    }

    #[test]
    fn constancy_and_dead_code() {
        let (p, r) = analyzed(
            "program t(x: int) {
                 let a = 5;
                 if (a < 3) {
                     error(1);
                 }
                 if (a == 5) {
                     let b = 1;
                 } else {
                     error(2);
                 }
                 if (x > 0) { error(3); }
                 return;
             }",
        );
        assert_eq!(r.constancy_of(BranchId(0)), Constancy::AlwaysFalse);
        assert_eq!(r.constancy_of(BranchId(1)), Constancy::AlwaysTrue);
        assert_eq!(r.constancy_of(BranchId(2)), Constancy::Unknown);
        // error(1) and error(2) are dead; everything else is live.
        let dead: Vec<_> = r.dead_stmts().iter().copied().collect();
        assert_eq!(dead.len(), 2, "dead: {dead:?}");
        // Flip feasibility: branch 0 can only go false, branch 2 both.
        assert!(r.flip_infeasible(BranchId(0), true));
        assert!(!r.flip_infeasible(BranchId(0), false));
        assert!(!r.flip_infeasible(BranchId(2), true));
        assert!(!r.flip_infeasible(BranchId(2), false));
        assert_eq!(p.branch_count as usize, r.branch_count());
    }

    #[test]
    fn refinement_narrows_branch_arms() {
        let (_, r) = analyzed(
            "program t(x: int) {
                 if (x < 10) {
                     if (x < 20) { error(1); }
                 }
                 return;
             }",
        );
        // Inside `x < 10`, `x < 20` is decided.
        assert_eq!(r.constancy_of(BranchId(1)), Constancy::AlwaysTrue);
    }

    #[test]
    fn loops_reach_a_sound_fixpoint() {
        let (_, r) = analyzed(
            "program t(x: int) {
                 let i = 0;
                 while (i < 100) {
                     i = i + 1;
                 }
                 if (i == 100) { error(1); }
                 if (x == i) { error(2); }
                 return;
             }",
        );
        // Widening loses the exact exit value: both must stay sound
        // (never a wrong AlwaysFalse for an actually-taken branch).
        assert_ne!(r.constancy_of(BranchId(1)), Constancy::AlwaysFalse);
        // The loop counter is untainted; branch 2 depends only on x.
        assert_eq!(r.taint_of(BranchId(2)), &[0usize].into_iter().collect());
    }

    #[test]
    fn infinite_loop_kills_fall_through() {
        let (_, r) = analyzed(
            "program t(x: int) {
                 while (0 == 0) {
                     if (x == 3) { error(1); }
                 }
                 error(2);
             }",
        );
        assert_eq!(r.constancy_of(BranchId(0)), Constancy::AlwaysTrue);
        // error(2) after the loop is dead; the branch in the body lives.
        assert_eq!(r.dead_stmts().len(), 1);
        assert!(r.branch(BranchId(1)).reached);
    }

    #[test]
    fn function_bodies_analyzed_per_call_site() {
        let (_, r) = analyzed(
            "fn double(v: int) { return v * 2; }
             program t(x: int) {
                 let a = double(x);
                 let b = double(3);
                 if (a == b) { error(1); }
                 return;
             }",
        );
        // a carries x, b is the constant 6.
        assert_eq!(r.taint_of(BranchId(0)), &[0usize].into_iter().collect());
        assert!(r.dead_stmts().is_empty());
    }

    #[test]
    fn dead_native_site_detected() {
        let (_, r) = analyzed(
            "native h/1;
             program t(x: int) {
                 let a = 1;
                 if (a == 0) {
                     let c = h(x);
                 }
                 if (x == h(2)) { error(1); }
                 return;
             }",
        );
        assert_eq!(r.native_sites().len(), 2);
        assert_eq!(r.native_sites()[0].class, SiteClass::Dead);
        assert_eq!(r.native_sites()[1].class, SiteClass::ConstArgs(vec![2]));
    }

    #[test]
    fn input_dependent_site_detected() {
        let (_, r) = analyzed(
            "native h/1;
             program t(x: int) {
                 if (h(x) == 567) { error(1); }
                 return;
             }",
        );
        assert_eq!(r.native_sites()[0].class, SiteClass::InputDependent);
        assert_eq!(r.taint_of(BranchId(0)), &[0usize].into_iter().collect());
    }

    #[test]
    fn corpus_analyzes_without_panic_and_keeps_errors_reachable() {
        for (name, build) in corpus::all() {
            let (p, _natives) = build();
            let r = analyze(&p);
            assert_eq!(r.branch_count(), p.branch_count as usize, "{name}");
            // Corpus programs are hand-written to exercise their error
            // stops: none may be proved unreachable.
            for (id, s) in hotg_lang::stmt_ids(&p) {
                if matches!(s, hotg_lang::Stmt::Error(_)) {
                    assert!(!r.is_dead(id), "{name}: error stop {id} marked dead");
                }
            }
        }
    }

    #[test]
    fn lint_reports_expected_codes() {
        let (p, r) = analyzed(
            "native h/1;
             program t(x: int) {
                 let a = 5;
                 if (a < 3) {
                     error(1);
                 }
                 let c = h(7);
                 if (x == c) { error(2); }
                 return;
             }",
        );
        let diags = lint(&p, &r);
        let codes: Vec<&str> = diags.iter().map(|d| d.code.0).collect();
        assert!(codes.contains(&"HA002"), "always-false: {codes:?}");
        assert!(codes.contains(&"HA003"), "dead error(1): {codes:?}");
        assert!(codes.contains(&"HA005"), "pre-sampleable h(7): {codes:?}");
        assert!(!codes.contains(&"HA001"), "{codes:?}");
        // Spans point into the source.
        let false_branch = diags.iter().find(|d| d.code.0 == "HA002").unwrap();
        assert!(false_branch.span.is_known());
        // And the JSON encoding round-trips the whole report.
        let back = json::from_json(&json::to_json(&diags)).unwrap();
        assert_eq!(diags, back);
    }
}
