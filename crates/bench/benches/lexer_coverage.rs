//! End-to-end §7 campaign cost: how much work each technique spends on
//! the hash-based keyword lexer (APP-LEXER row of DESIGN.md).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotg_core::Technique;
use hotg_lexapp::{campaign, LexerVariant};

fn bench_campaigns(c: &mut Criterion) {
    for technique in Technique::ALL {
        c.bench_function(&format!("lexer_campaign/{}", technique.name()), |b| {
            b.iter(|| black_box(campaign(LexerVariant::Fixed, technique, 12)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_campaigns
}
criterion_main!(benches);
