//! The engine's work items and worker results: what a generation
//! schedules ([`Target`] → [`Job`]) and what a worker hands back to the
//! merge thread ([`WorkerRun`], [`TargetOutcome`]).

use crate::chaos::FaultCounters;
use crate::report::{DegradationRecord, RunRecord};
use hotg_concolic::PathConstraint;
use hotg_lang::BranchId;
use hotg_logic::StableHasher;
use hotg_logic::{Formula, Model};
use hotg_solver::Samples;
use std::hash::{Hash, Hasher};

/// A branch-flip target produced by one executed run.
#[derive(Clone, Debug)]
pub(crate) struct Target {
    pub(crate) parent_inputs: Vec<i64>,
    pub(crate) pc: PathConstraint,
    /// Index of the branch entry to negate.
    pub(crate) j: usize,
    /// Samples observed by the parent run (used when cross-run sampling
    /// is disabled).
    pub(crate) parent_samples: Samples,
}

/// A filtered, ready-to-process target of one generation: the dedup and
/// feasibility pre-checks ran on the merge thread, so workers start
/// straight at the solver query.
pub(crate) struct Job {
    pub(crate) target: Target,
    pub(crate) expected: Vec<(BranchId, bool)>,
    pub(crate) alt: Formula,
    pub(crate) id: BranchId,
}

/// One executed run produced while processing a target, together with
/// everything the merge step folds back into the campaign state.
pub(crate) struct WorkerRun {
    pub(crate) record: RunRecord,
    /// Samples observed by this run (merged into the global table).
    pub(crate) samples: Samples,
    /// Branch-flip targets of this run (next generation's worklist).
    pub(crate) children: Vec<Target>,
    /// Targets dropped by the static oracle while expanding this run.
    pub(crate) pruned_static: usize,
    /// The run's outcome was replaced by an injected interpreter fault
    /// (chaos testing).
    pub(crate) injected_fault: bool,
}

/// Everything one target's processing produced. Workers fill these in
/// isolation; the engine translates them into [`CampaignEvent`]s in
/// deterministic target order.
///
/// [`CampaignEvent`]: crate::CampaignEvent
#[derive(Default)]
pub(crate) struct TargetOutcome {
    pub(crate) solver_calls: usize,
    pub(crate) rejected_targets: usize,
    /// Solver/validity queries that failed with an error.
    pub(crate) solver_errors: usize,
    /// Escalated-budget retries of `Unknown` verdicts.
    pub(crate) budget_escalations: usize,
    /// The worker processing this target panicked; the panic was caught
    /// and the target abandoned (its partial outcome is discarded so the
    /// merged report never depends on how far the worker got).
    pub(crate) faulted: bool,
    /// Degradation-ladder rungs taken for this target.
    pub(crate) degradations: Vec<DegradationRecord>,
    /// Faults injected while processing this target.
    pub(crate) faults: FaultCounters,
    /// Executed runs (probes and generated tests), in execution order.
    pub(crate) runs: Vec<WorkerRun>,
}

/// Verdict of one alternate-path satisfiability query, with injected
/// chaos outcomes folded into the same shape as real ones.
pub(crate) enum Checked {
    Sat(Model),
    Unsat,
    Unknown,
    Errored,
}

/// Deterministic dedup key of an expected branch path. Storing the
/// 64-bit hash instead of the path itself keeps the `seen` set compact:
/// paths grow linearly with program depth, and every executed run
/// contributes one per negatable branch.
///
/// Fixed-key FNV-1a ([`StableHasher`]): the key is exchanged between
/// shards and drives the [`Partitioner`](super::state::Partitioner), so
/// it must be identical across processes, platforms, and toolchains —
/// `DefaultHasher` guarantees none of that.
pub(crate) fn path_key(path: &[(BranchId, bool)]) -> u64 {
    let mut h = StableHasher::new();
    path.hash(&mut h);
    h.finish()
}

/// Multiplies a node budget by the escalation factor, saturating.
pub(crate) fn scale_budget(budget: u64, factor: f64) -> u64 {
    let scaled = budget as f64 * factor;
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled as u64
    }
}
