//! Hash-consing arena for terms and formulas.
//!
//! A campaign normalizes, fingerprints, and re-keys the same path
//! constraints over and over: every solver query re-runs
//! `nnf().normalize()` and `fingerprint()` even when the query is a cache
//! hit, and sibling queries within a generation share almost all of their
//! structure. [`LogicArena`] interns terms and formulas so that
//!
//! * structurally equal nodes are the *same* allocation — equality between
//!   interned handles is pointer/id comparison, not a tree walk;
//! * `fingerprint()` and the solver's `nnf().normalize()` pre-pass are
//!   memoized per unique formula — recomputed once per campaign instead of
//!   once per query.
//!
//! Ownership: an arena is **per campaign** (owned by the driver), never a
//! process-wide global. Two concurrent campaigns in one process get
//! disjoint id spaces and share no allocations, so interned ids can be
//! used freely in campaign-local tables without cross-campaign leakage.
//!
//! Determinism: interning and memoization are *behavior-free* — the memo
//! stores exactly the value `nnf().normalize()` (and `fingerprint()`)
//! would recompute, so routing queries through the arena changes no
//! solver verdict, model, or report bit; only intern-hit counters, which
//! are surfaced separately from campaign reports.

use crate::formula::Formula;
use crate::term::Term;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Intern-table counters of a [`LogicArena`] (monotone, campaign-lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Unique nodes (terms + formulas) held by the arena.
    pub interned: u64,
    /// Intern lookups answered by an existing node.
    pub intern_hits: u64,
}

impl ArenaStats {
    /// Component-wise sum of two counters.
    pub fn merged(self, other: ArenaStats) -> ArenaStats {
        ArenaStats {
            interned: self.interned + other.interned,
            intern_hits: self.intern_hits + other.intern_hits,
        }
    }
}

/// One interned formula: identity plus memo slots.
#[derive(Debug)]
struct FormulaNode {
    id: u64,
    fingerprint: u64,
    formula: Formula,
    /// Memoized `nnf().normalize()` of `formula`, paired with the
    /// normalized form's own fingerprint (what solver cache keys need).
    normal: OnceLock<(Arc<Formula>, u64)>,
    /// Memoized plain `normalize()` (no NNF), paired with its fingerprint.
    /// The validity layer keys its memo on this form, which is *not* the
    /// same formula as `normal` when negations are present.
    flat: OnceLock<(Arc<Formula>, u64)>,
}

/// One interned term: identity only (terms have no normal form to memoize).
#[derive(Debug)]
struct TermNode {
    id: u64,
    term: Term,
}

/// A shared handle to an interned formula.
///
/// Handles interned from the *same arena* compare by pointer: two handles
/// are equal iff they intern structurally equal formulas. Handles from
/// different arenas are never pointer-equal (each campaign's id space is
/// disjoint).
#[derive(Clone, Debug)]
pub struct InternedFormula(Arc<FormulaNode>);

impl InternedFormula {
    /// Arena-local id (dense, allocation order).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Memoized structural fingerprint — always equal to
    /// `self.formula().fingerprint()`, computed once at intern time.
    pub fn fingerprint(&self) -> u64 {
        self.0.fingerprint
    }

    /// The interned formula.
    pub fn formula(&self) -> &Formula {
        &self.0.formula
    }

    /// Pointer identity (the arena's equality).
    pub fn ptr_eq(a: &InternedFormula, b: &InternedFormula) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl PartialEq for InternedFormula {
    fn eq(&self, other: &InternedFormula) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for InternedFormula {}

/// A shared handle to an interned term; same identity rules as
/// [`InternedFormula`].
#[derive(Clone, Debug)]
pub struct InternedTerm(Arc<TermNode>);

impl InternedTerm {
    /// Arena-local id (dense, allocation order; terms and formulas share
    /// one id space).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// The interned term.
    pub fn term(&self) -> &Term {
        &self.0.term
    }

    /// Pointer identity (the arena's equality).
    pub fn ptr_eq(a: &InternedTerm, b: &InternedTerm) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl PartialEq for InternedTerm {
    fn eq(&self, other: &InternedTerm) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for InternedTerm {}

/// Interior tables, behind one mutex (interning is a short critical
/// section; memoized normalization happens outside the lock via
/// [`OnceLock`]).
#[derive(Debug, Default)]
struct ArenaInner {
    /// fingerprint → interned formulas with that fingerprint. Buckets are
    /// scanned with full structural equality, so a fingerprint collision
    /// costs a scan, never a wrong identity.
    formulas: HashMap<u64, Vec<Arc<FormulaNode>>>,
    /// fingerprint → interned terms with that fingerprint.
    terms: HashMap<u64, Vec<Arc<TermNode>>>,
    next_id: u64,
}

/// A per-campaign hash-consing arena (see module docs).
#[derive(Debug, Default)]
pub struct LogicArena {
    inner: Mutex<ArenaInner>,
    intern_hits: AtomicU64,
}

impl LogicArena {
    /// An empty arena with a fresh id space.
    pub fn new() -> LogicArena {
        LogicArena::default()
    }

    /// Interns a formula: returns the existing handle if a structurally
    /// equal formula was interned before, otherwise allocates a new node.
    pub fn intern(&self, f: &Formula) -> InternedFormula {
        let fp = f.fingerprint();
        let mut inner = self.inner.lock().expect("arena lock");
        if let Some(bucket) = inner.formulas.get(&fp) {
            if let Some(node) = bucket.iter().find(|n| n.formula == *f) {
                let node = Arc::clone(node);
                drop(inner);
                self.intern_hits.fetch_add(1, Ordering::Relaxed);
                return InternedFormula(node);
            }
        }
        let node = Arc::new(FormulaNode {
            id: inner.next_id,
            fingerprint: fp,
            formula: f.clone(),
            normal: OnceLock::new(),
            flat: OnceLock::new(),
        });
        inner.next_id += 1;
        inner
            .formulas
            .entry(fp)
            .or_default()
            .push(Arc::clone(&node));
        InternedFormula(node)
    }

    /// Interns a term (same identity rules as [`LogicArena::intern`]).
    pub fn intern_term(&self, t: &Term) -> InternedTerm {
        let mut h = crate::hash::StableHasher::new();
        std::hash::Hash::hash(t, &mut h);
        let fp = std::hash::Hasher::finish(&h);
        let mut inner = self.inner.lock().expect("arena lock");
        if let Some(bucket) = inner.terms.get(&fp) {
            if let Some(node) = bucket.iter().find(|n| n.term == *t) {
                let node = Arc::clone(node);
                drop(inner);
                self.intern_hits.fetch_add(1, Ordering::Relaxed);
                return InternedTerm(node);
            }
        }
        let node = Arc::new(TermNode {
            id: inner.next_id,
            term: t.clone(),
        });
        inner.next_id += 1;
        inner.terms.entry(fp).or_default().push(Arc::clone(&node));
        InternedTerm(node)
    }

    /// The solver's query pre-pass, memoized: `f.nnf().normalize()` and
    /// the normalized form's fingerprint, computed once per unique
    /// formula. The returned values are bit-identical to what the
    /// unmemoized pre-pass would produce.
    pub fn normal(&self, f: &Formula) -> (Arc<Formula>, u64) {
        let node = self.intern(f);
        let (norm, fp) = node.0.normal.get_or_init(|| {
            let n = f.nnf().normalize();
            let nfp = n.fingerprint();
            (Arc::new(n), nfp)
        });
        (Arc::clone(norm), *fp)
    }

    /// Memoized `nnf().normalize()` of an already-interned formula.
    pub fn normal_of(&self, f: &InternedFormula) -> (Arc<Formula>, u64) {
        let (norm, fp) = f.0.normal.get_or_init(|| {
            let n = f.formula().nnf().normalize();
            let nfp = n.fingerprint();
            (Arc::new(n), nfp)
        });
        (Arc::clone(norm), *fp)
    }

    /// Memoized plain `f.normalize()` (no NNF) and its fingerprint. The
    /// validity checker keys its outcome memo on this form; like
    /// [`LogicArena::normal`], the memo is bit-identical to the
    /// unmemoized computation.
    pub fn normalized(&self, f: &Formula) -> (Arc<Formula>, u64) {
        let node = self.intern(f);
        let (norm, fp) = node.0.flat.get_or_init(|| {
            let n = f.normalize();
            let nfp = n.fingerprint();
            (Arc::new(n), nfp)
        });
        (Arc::clone(norm), *fp)
    }

    /// Current intern-table counters.
    pub fn stats(&self) -> ArenaStats {
        let inner = self.inner.lock().expect("arena lock");
        ArenaStats {
            interned: inner.next_id,
            intern_hits: self.intern_hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Rel};
    use crate::sort::Sort;
    use crate::sym::Signature;

    fn setup() -> (Signature, crate::sym::Var, crate::sym::Var) {
        let mut sig = Signature::new();
        let x = sig.declare_var("x", Sort::Int);
        let y = sig.declare_var("y", Sort::Int);
        (sig, x, y)
    }

    fn gt0(v: crate::sym::Var) -> Formula {
        Formula::atom(Atom::new(Term::var(v), Rel::Gt, Term::int(0)))
    }

    #[test]
    fn interning_is_pointer_identity() {
        let (_, x, y) = setup();
        let arena = LogicArena::new();
        let a = arena.intern(&gt0(x));
        let b = arena.intern(&gt0(x));
        let c = arena.intern(&gt0(y));
        assert!(InternedFormula::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert!(!InternedFormula::ptr_eq(&a, &c));
        assert_ne!(a, c);
        assert_ne!(a.id(), c.id());
        let s = arena.stats();
        assert_eq!((s.interned, s.intern_hits), (2, 1));
    }

    #[test]
    fn term_interning_is_pointer_identity() {
        let (_, x, y) = setup();
        let arena = LogicArena::new();
        let a = arena.intern_term(&Term::var(x));
        let b = arena.intern_term(&Term::var(x));
        let c = arena.intern_term(&Term::var(y));
        assert!(InternedTerm::ptr_eq(&a, &b));
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
    }

    #[test]
    fn memoized_fingerprint_matches_fresh() {
        let (_, x, y) = setup();
        let arena = LogicArena::new();
        let f = gt0(x).and(gt0(y));
        let i = arena.intern(&f);
        assert_eq!(i.fingerprint(), f.fingerprint());
    }

    #[test]
    fn memoized_normal_matches_unmemoized_prepass() {
        let (_, x, y) = setup();
        let arena = LogicArena::new();
        let f = Formula::Not(Box::new(gt0(x).and(gt0(y)))).or(gt0(x));
        let (n1, fp1) = arena.normal(&f);
        let (n2, fp2) = arena.normal(&f);
        assert!(Arc::ptr_eq(&n1, &n2), "second call must hit the memo");
        let fresh = f.nnf().normalize();
        assert_eq!(*n1, fresh);
        assert_eq!(fp1, fresh.fingerprint());
        assert_eq!(fp1, fp2);
    }

    #[test]
    fn memoized_flat_normalize_is_distinct_from_nnf() {
        let (_, x, y) = setup();
        let arena = LogicArena::new();
        let f = Formula::Not(Box::new(gt0(x).and(gt0(y))));
        let (flat, ffp) = arena.normalized(&f);
        let (flat2, _) = arena.normalized(&f);
        assert!(Arc::ptr_eq(&flat, &flat2), "second call must hit the memo");
        assert_eq!(*flat, f.normalize());
        assert_eq!(ffp, f.normalize().fingerprint());
        // Both memo slots coexist on one node and differ here.
        let (nnf, _) = arena.normal(&f);
        assert_ne!(*flat, *nnf);
    }

    #[test]
    fn arenas_have_disjoint_id_spaces() {
        let (_, x, y) = setup();
        let a = LogicArena::new();
        let b = LogicArena::new();
        let fa = a.intern(&gt0(x));
        let ga = a.intern(&gt0(y));
        let fb = b.intern(&gt0(x));
        // Each arena allocates ids densely from zero: interning into one
        // arena never advances — or collides with — the other's id space.
        assert_eq!(fa.id(), 0);
        assert_eq!(ga.id(), 1);
        assert_eq!(fb.id(), 0);
        // And the allocations themselves are disjoint.
        assert!(!InternedFormula::ptr_eq(&fa, &fb));
        assert_eq!(b.stats().interned, 1);
    }
}
