//! §8 end-to-end: higher-order compositional test generation across
//! crates — summaries, summarized concolic execution, validity with an
//! extra antecedent, and the findsym-wrapper lexer scenario.

use hotg_core::{Driver, DriverConfig, SummaryConfig, SummaryTable, Technique};
use hotg_lang::corpus;
use hotg_lexapp::findsym_campaign;

#[test]
fn composed_summary_has_both_guards() {
    let (program, natives) = corpus::composed();
    let table = SummaryTable::compute(&program, &natives, &SummaryConfig::default());
    assert_eq!(table.len(), 1);
    // Both guard polarities of the `v > 100` branch were enumerated.
    let ctx = hotg_concolic::ConcolicContext::new(&program);
    let summary = table
        .get(ctx.defined_sym("adjusted").unwrap())
        .expect("adjusted summarized");
    assert_eq!(summary.paths.len(), 2);
    assert!(summary.complete);
}

#[test]
fn compositional_equals_inline_on_composed() {
    let (program, natives) = corpus::composed();
    let cfg = DriverConfig {
        max_runs: 40,
        ..DriverConfig::with_initial(vec![0, 0])
    };
    let inline = Driver::new(&program, &natives, cfg.clone()).run(Technique::HigherOrder);
    let comp = Driver::new(&program, &natives, cfg).run(Technique::HigherOrderCompositional);
    // Same bugs found by both routes.
    assert_eq!(
        inline.errors.keys().collect::<Vec<_>>(),
        comp.errors.keys().collect::<Vec<_>>(),
        "inline {inline} vs compositional {comp}"
    );
    assert_eq!(comp.divergences, 0);
}

#[test]
fn findsym_scenario_needs_both_ingredients() {
    // Summaries alone (no seed): the hash preimages are unknowable.
    let (report, depth) = findsym_campaign(false, 40);
    assert_eq!(depth, 0, "{report}");
    // Summaries + a scrambled seed: full parse synthesized.
    let (report, depth) = findsym_campaign(true, 80);
    assert_eq!(depth, 3, "{report}");
    // The error-triggering run was *generated*, not seeded: its buffer
    // differs from the seed sentence.
    let seed = hotg_lexapp::programs::encode_fixed(["then", "end", "if"]);
    let hit = report.first_hit(3).expect("full parse");
    assert_ne!(report.runs[hit].inputs, seed);
    assert_eq!(
        report.runs[hit].inputs,
        hotg_lexapp::programs::encode_fixed(["if", "then", "end"]),
        "the synthesized sentence is exactly `if then end`"
    );
}
