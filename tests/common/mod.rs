//! Shared helpers for the integration tests: a random `mini`-program
//! generator (proptest strategies) and a model builder that interprets
//! uninterpreted applications with the *real* native functions.
//!
//! Each integration-test binary compiles this module independently and
//! uses a different subset of it.
#![allow(dead_code)]

use hotg_concolic::ConcolicContext;
use hotg_lang::{BinOp, BranchId, Expr, NativeDecl, NativeRegistry, Param, Program, Stmt, UnOp};
use hotg_logic::{Formula, Model, Term, Value};
use hotg_prop::prelude::*;

/// The native function used by generated programs.
pub fn test_natives() -> NativeRegistry {
    let mut n = NativeRegistry::new();
    n.register("f", 1, |args| {
        (args[0].wrapping_mul(37).wrapping_add(11)).rem_euclid(1000)
    });
    n
}

/// The Rust-side interpretation of the generated programs' unknown
/// functions, including the `@mul`/`@div`/`@mod` instruction symbols.
pub fn real_interp(name: &str, args: &[i64]) -> Option<i64> {
    match name {
        "f" => Some((args[0].wrapping_mul(37).wrapping_add(11)).rem_euclid(1000)),
        "@mul" => args[0].checked_mul(args[1]),
        "@div" => {
            if args[1] == 0 {
                None
            } else {
                args[0].checked_div(args[1])
            }
        }
        "@mod" => {
            if args[1] == 0 {
                None
            } else {
                args[0].checked_rem(args[1])
            }
        }
        _ => None,
    }
}

const INPUTS: [&str; 3] = ["x", "y", "z"];

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-20i64..=20).prop_map(Expr::Int),
        (0usize..3).prop_map(|i| Expr::Var(INPUTS[i].to_string())),
    ]
}

/// Call-free, multiplication-free expressions: safe operands for `*`.
///
/// Theorem 4 presumes the *same* imprecision sites in both engine modes.
/// A multiplication whose operand contains a call (or another symbolic
/// multiplication) breaks that premise: sound concretization turns the
/// inner unknown into a constant and keeps the outer product linear,
/// while the uninterpreted mode abstracts the outer product too — see
/// `theorem4_boundary` in `hotg-core` for the concrete counterexample.
fn mul_safe_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Expr::Binary(BinOp::Add, Box::new(a), Box::new(b)) }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Expr::Binary(BinOp::Sub, Box::new(a), Box::new(b)) }),
            inner.prop_map(|a| Expr::Unary(UnOp::Neg, Box::new(a))),
        ]
    })
}

fn int_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Expr::Binary(BinOp::Add, Box::new(a), Box::new(b)) }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Expr::Binary(BinOp::Sub, Box::new(a), Box::new(b)) }),
            (mul_safe_expr(), mul_safe_expr())
                .prop_map(|(a, b)| { Expr::Binary(BinOp::Mul, Box::new(a), Box::new(b)) }),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(UnOp::Neg, Box::new(a))),
            inner.prop_map(|a| Expr::Call("f".to_string(), vec![a])),
        ]
    })
}

fn cond_expr() -> impl Strategy<Value = Expr> {
    let cmp = prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ];
    (int_expr(), cmp, int_expr()).prop_map(|(a, op, b)| Expr::Binary(op, Box::new(a), Box::new(b)))
}

/// Statements over the three fixed inputs; assignments only target
/// inputs, so scoping is trivially valid.
fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        prop_oneof![
            (0usize..3, int_expr()).prop_map(|(i, e)| Stmt::Assign(INPUTS[i].to_string(), e)),
            (1i64..=4).prop_map(Stmt::Error),
            Just(Stmt::Return),
        ]
        .boxed()
    } else {
        let body = hotg_prop::collection::vec(stmt(depth - 1), 1..3);
        prop_oneof![
            3 => (0usize..3, int_expr())
                .prop_map(|(i, e)| Stmt::Assign(INPUTS[i].to_string(), e)),
            2 => (cond_expr(), body.clone(), hotg_prop::collection::vec(stmt(depth - 1), 0..2))
                .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                    id: BranchId(0), // renumbered below
                    cond,
                    then_branch,
                    else_branch,
                }),
            1 => (1i64..=4).prop_map(Stmt::Error),
        ]
        .boxed()
    }
}

fn renumber(stmts: &mut [Stmt], next: &mut u32) {
    for s in stmts {
        match s {
            Stmt::If {
                id,
                then_branch,
                else_branch,
                ..
            } => {
                *id = BranchId(*next);
                *next += 1;
                renumber(then_branch, next);
                renumber(else_branch, next);
            }
            Stmt::While { id, body, .. } => {
                *id = BranchId(*next);
                *next += 1;
                renumber(body, next);
            }
            _ => {}
        }
    }
}

/// A random loop-free program over inputs `x, y, z` and native `f/1`.
pub fn arb_program() -> impl Strategy<Value = Program> {
    hotg_prop::collection::vec(stmt(2), 1..5).prop_map(|mut body| {
        let mut next = 0;
        renumber(&mut body, &mut next);
        let program = Program {
            name: "generated".to_string(),
            params: INPUTS
                .iter()
                .map(|n| Param::Scalar(n.to_string()))
                .collect(),
            natives: vec![NativeDecl {
                name: "f".to_string(),
                arity: 1,
            }],
            functions: Vec::new(),
            body,
            branch_count: next,

            spans: Default::default(),
        };
        hotg_lang::check(&program).expect("generated programs are well-formed");
        program
    })
}

/// Random input vectors in a small range.
pub fn arb_inputs() -> impl Strategy<Value = Vec<i64>> {
    hotg_prop::collection::vec(-25i64..=25, 3)
}

/// Builds a [`Model`] assigning the given inputs and interpreting every
/// application of `formula` with the *real* functions. Returns `None` if
/// some application faults (e.g. division by zero).
pub fn model_with_real_functions(
    ctx: &ConcolicContext,
    inputs: &[i64],
    formula: &Formula,
) -> Option<Model> {
    let mut model = Model::new();
    for (i, v) in ctx.input_vars().iter().enumerate() {
        model.set_var(*v, Value::Int(inputs[i]));
    }
    for app in formula.apps() {
        let Term::App(fsym, args) = &app else {
            continue;
        };
        let vals: Vec<i64> = args
            .iter()
            .map(|a| a.eval(&model))
            .collect::<Option<Vec<i64>>>()?;
        let name = ctx.sig().func_name(*fsym);
        let out = real_interp(name, &vals)?;
        model.set_func_entry(*fsym, vals, out);
    }
    Some(model)
}
