//! Directed-search drivers for the four test-generation techniques.
//!
//! The search is generational (breadth-first over branch-flip targets, as
//! in SAGE): every executed run contributes one target per negatable
//! branch entry of its path constraint; targets are deduplicated by their
//! expected branch path.
//!
//! * DART techniques solve `ALT(pc)` with a *satisfiability* query and
//!   turn the model into inputs (unconstrained inputs keep the parent
//!   run's values, as in the original DART).
//! * The higher-order technique checks *validity* of
//!   `POST(ALT(pc)) = ∃X : A ⇒ ALT(pc)` and interprets the resulting
//!   strategy against the recorded samples, running intermediate probe
//!   executions when a needed application value is unknown (multi-step
//!   test generation, §5.3 Example 7).

use crate::config::{DriverConfig, Technique};
use crate::report::{Origin, Report, RunRecord};
use crate::summaries::{SummaryConfig, SummaryTable};
use hotg_analysis::{analyze, AnalysisResult, SiteClass};
use hotg_concolic::{
    diverged, execute_opts, ConcolicContext, ConcolicRun, PathConstraint, SymbolicMode,
};
use hotg_lang::{BranchId, InputVector, NativeRegistry, Program};
use hotg_logic::{Formula, Value};
use hotg_solver::{
    Interpretation, Samples, SmtResult, SmtSolver, Strategy, ValidityChecker, ValidityOutcome,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// A branch-flip target produced by one executed run.
#[derive(Clone, Debug)]
struct Target {
    parent_inputs: Vec<i64>,
    pc: PathConstraint,
    /// Index of the branch entry to negate.
    j: usize,
    /// Samples observed by the parent run (used when cross-run sampling
    /// is disabled).
    parent_samples: Samples,
}

/// A test-generation campaign on one program.
#[derive(Debug)]
pub struct Driver<'p> {
    program: &'p Program,
    natives: &'p NativeRegistry,
    ctx: ConcolicContext,
    analysis: AnalysisResult,
    config: DriverConfig,
}

impl<'p> Driver<'p> {
    /// Creates a driver for a program.
    pub fn new(
        program: &'p Program,
        natives: &'p NativeRegistry,
        config: DriverConfig,
    ) -> Driver<'p> {
        Driver {
            program,
            natives,
            ctx: ConcolicContext::new(program),
            analysis: analyze(program),
            config,
        }
    }

    /// The symbolic context (signature, input variables).
    pub fn ctx(&self) -> &ConcolicContext {
        &self.ctx
    }

    /// The static analysis results used as the search oracle.
    pub fn analysis(&self) -> &AnalysisResult {
        &self.analysis
    }

    /// Runs a campaign with the given technique and returns its report.
    pub fn run(&self, technique: Technique) -> Report {
        let start = std::time::Instant::now();
        let mut report = match technique {
            Technique::Random => self.random_campaign(),
            Technique::DartUnsound => self.directed(technique, SymbolicMode::UnsoundConcretize),
            Technique::DartSound => self.directed(technique, SymbolicMode::SoundConcretize),
            Technique::DartSoundDelayed => {
                self.directed(technique, SymbolicMode::SoundConcretizeDelayed)
            }
            Technique::HigherOrder => self.directed(technique, SymbolicMode::Uninterpreted),
            Technique::HigherOrderCompositional => {
                self.directed(technique, SymbolicMode::Uninterpreted)
            }
        };
        report.elapsed = start.elapsed();
        report
    }

    fn fresh_report(&self, technique: Technique) -> Report {
        Report {
            technique,
            program: self.program.name.clone(),
            runs: Vec::new(),
            errors: BTreeMap::new(),
            coverage: BTreeSet::new(),
            divergences: 0,
            probes: 0,
            solver_calls: 0,
            rejected_targets: 0,
            targets_pruned_static: 0,
            presampled_sites: 0,
            branch_sites: self.program.branch_count,
            elapsed: std::time::Duration::ZERO,
        }
    }

    fn random_inputs(&self, rng: &mut StdRng) -> Vec<i64> {
        let (lo, hi) = self.config.random_range;
        (0..self.program.input_width())
            .map(|_| rng.gen_range(lo..=hi))
            .collect()
    }

    fn initial_inputs(&self, rng: &mut StdRng) -> Vec<i64> {
        self.config
            .initial_inputs
            .clone()
            .unwrap_or_else(|| self.random_inputs(rng))
    }

    /// Blackbox random testing baseline.
    fn random_campaign(&self) -> Report {
        let mut report = self.fresh_report(Technique::Random);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for i in 0..self.config.max_runs {
            let inputs = if i == 0 {
                self.initial_inputs(&mut rng)
            } else {
                self.random_inputs(&mut rng)
            };
            let (outcome, trace) = hotg_lang::run(
                self.program,
                self.natives,
                &InputVector::new(inputs.clone()),
                self.config.fuel,
            );
            let record = RunRecord {
                inputs,
                outcome: outcome.clone(),
                origin: if i == 0 {
                    Origin::Initial
                } else {
                    Origin::Random
                },
                diverged: None,
                path: trace.branches.clone(),
            };
            self.account(&mut report, record);
        }
        report
    }

    /// Records a run into the report (coverage, errors).
    fn account(&self, report: &mut Report, record: RunRecord) {
        for &(id, dir) in &record.path {
            report.coverage.insert((id, dir));
        }
        if let hotg_lang::Outcome::Error(code) = record.outcome {
            let idx = report.runs.len();
            report.errors.entry(code).or_insert(idx);
        }
        if record.diverged == Some(true) {
            report.divergences += 1;
        }
        if matches!(record.origin, Origin::Probe { .. }) {
            report.probes += 1;
        }
        report.runs.push(record);
    }

    /// Executes one concolic run, accounts it, and enqueues its targets.
    #[allow(clippy::too_many_arguments)]
    fn execute_and_expand(
        &self,
        inputs: Vec<i64>,
        origin: Origin,
        expected: Option<&[(BranchId, bool)]>,
        mode: SymbolicMode,
        summarize: bool,
        report: &mut Report,
        worklist: &mut VecDeque<Target>,
        samples_acc: &mut Samples,
    ) -> ConcolicRun {
        let run = execute_opts(
            &self.ctx,
            self.program,
            self.natives,
            &InputVector::new(inputs.clone()),
            mode,
            self.config.fuel,
            summarize,
        );
        samples_acc.merge(&run.samples);
        let div = expected.map(|e| diverged(e, &run.trace.branches));
        let record = RunRecord {
            inputs: inputs.clone(),
            outcome: run.outcome.clone(),
            origin,
            diverged: div,
            path: run.trace.branches.clone(),
        };
        self.account(report, record);
        for j in run.pc.branch_indices() {
            // A constraint that folded to `true` has no input dependence:
            // its negation is trivially infeasible, so it is not a target.
            if run.pc.entries[j].constraint == Formula::True {
                continue;
            }
            // Static oracle: if the analysis proves the flipped direction
            // can never execute (constant branch condition), skip the
            // target without spending a solver/validity query on it.
            if self.config.static_pruning {
                let (id, taken) = run.pc.entries[j].branch.expect("branch entry");
                if self.analysis.flip_infeasible(id, !taken) {
                    report.targets_pruned_static += 1;
                    continue;
                }
            }
            worklist.push_back(Target {
                parent_inputs: inputs.clone(),
                pc: run.pc.clone(),
                j,
                parent_samples: run.samples.clone(),
            });
        }
        run
    }

    /// Merges solved/strategy values over the parent inputs: DART
    /// generates "variants of the previous inputs" (§1), so inputs the
    /// solver left unconstrained keep their old values.
    fn merge_inputs(&self, parent: &[i64], values: &BTreeMap<hotg_logic::Var, i64>) -> Vec<i64> {
        let mut out = parent.to_vec();
        for (i, v) in self.ctx.input_vars().iter().enumerate() {
            if let Some(val) = values.get(v) {
                out[i] = *val;
            }
        }
        out
    }

    /// The directed search shared by the whitebox techniques.
    fn directed(&self, technique: Technique, mode: SymbolicMode) -> Report {
        let summarize = technique == Technique::HigherOrderCompositional;
        let summaries = if summarize && !self.program.functions.is_empty() {
            Some(SummaryTable::compute(
                self.program,
                self.natives,
                &SummaryConfig::default(),
            ))
        } else {
            None
        };
        let mut report = self.fresh_report(technique);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut worklist: VecDeque<Target> = VecDeque::new();
        let mut seen: HashSet<Vec<(BranchId, bool)>> = HashSet::new();
        let mut samples_acc = Samples::new();
        let smt = SmtSolver::with_config(self.config.validity.smt);
        let validity = ValidityChecker::with_config(self.config.validity);

        // UF-placement oracle: native call sites whose arguments are
        // statically constant always evaluate the same application, so
        // their input/output pair can be put into the `IOF` table before
        // the first run — a validity proof may then use the pair without
        // a probe execution (Figure 3's sampled table, filled eagerly).
        if self.config.static_pruning {
            for site in self.analysis.native_sites() {
                let SiteClass::ConstArgs(args) = &site.class else {
                    continue;
                };
                let Some(fsym) = self.ctx.native_sym(&site.name) else {
                    continue;
                };
                if let Ok(out) = self.natives.call(&site.name, args) {
                    samples_acc.record(fsym, args.clone(), out);
                    report.presampled_sites += 1;
                }
            }
        }

        let initial = self.initial_inputs(&mut rng);
        self.execute_and_expand(
            initial,
            Origin::Initial,
            None,
            mode,
            summarize,
            &mut report,
            &mut worklist,
            &mut samples_acc,
        );
        for seed_inputs in &self.config.seed_corpus {
            self.execute_and_expand(
                seed_inputs.clone(),
                Origin::Seed,
                None,
                mode,
                summarize,
                &mut report,
                &mut worklist,
                &mut samples_acc,
            );
        }

        while let Some(target) = worklist.pop_front() {
            if report.runs.len() >= self.config.max_runs {
                break;
            }
            let Some(expected) = target.pc.expected_path(target.j) else {
                continue;
            };
            if !seen.insert(expected.clone()) {
                continue;
            }
            let Some(alt) = target.pc.alt(target.j) else {
                continue;
            };
            let (id, _) = target.pc.entries[target.j].branch.expect("branch entry");

            match technique {
                Technique::DartUnsound | Technique::DartSound | Technique::DartSoundDelayed => {
                    report.solver_calls += 1;
                    match smt.check(&alt) {
                        Ok(SmtResult::Sat(model)) => {
                            let mut values = BTreeMap::new();
                            for v in alt.vars() {
                                if let Some(Value::Int(x)) = model.var(v) {
                                    values.insert(v, x);
                                }
                            }
                            let inputs = self.merge_inputs(&target.parent_inputs, &values);
                            self.execute_and_expand(
                                inputs,
                                Origin::Solved { target: id },
                                Some(&expected),
                                mode,
                                summarize,
                                &mut report,
                                &mut worklist,
                                &mut samples_acc,
                            );
                        }
                        Ok(SmtResult::Unsat) | Ok(SmtResult::Unknown) | Err(_) => {
                            report.rejected_targets += 1;
                        }
                    }
                }
                Technique::HigherOrder | Technique::HigherOrderCompositional => {
                    self.higher_order_target(
                        &validity,
                        &target,
                        &alt,
                        id,
                        &expected,
                        summaries.as_ref(),
                        &mut report,
                        &mut worklist,
                        &mut samples_acc,
                    );
                }
                Technique::Random => unreachable!("random is not a directed search"),
            }
        }
        report
    }

    /// Processes one target with higher-order test generation, including
    /// multi-step probing.
    #[allow(clippy::too_many_arguments)]
    fn higher_order_target(
        &self,
        validity: &ValidityChecker,
        target: &Target,
        alt: &Formula,
        id: BranchId,
        expected: &[(BranchId, bool)],
        summaries: Option<&SummaryTable>,
        report: &mut Report,
        worklist: &mut VecDeque<Target>,
        samples_acc: &mut Samples,
    ) {
        let summarize = summaries.is_some();
        let extra = summaries
            .map(|t| t.antecedent_for(alt))
            .unwrap_or(Formula::True);
        let mut probes_left = self.config.max_probes_per_target;
        loop {
            if report.runs.len() >= self.config.max_runs {
                return;
            }
            let samples = if self.config.cross_run_samples {
                samples_acc.clone()
            } else {
                target.parent_samples.clone()
            };
            report.solver_calls += 1;
            let outcome = match validity.check_with(self.ctx.input_vars(), &samples, &extra, alt) {
                Ok(o) => o,
                Err(_) => {
                    report.rejected_targets += 1;
                    return;
                }
            };
            match outcome {
                ValidityOutcome::Valid(strategy) => {
                    self.run_strategy(
                        &strategy,
                        target,
                        id,
                        expected,
                        summarize,
                        &mut probes_left,
                        report,
                        worklist,
                        samples_acc,
                    );
                    return;
                }
                ValidityOutcome::NeedMoreSamples { probe, missing: _ } => {
                    if probes_left == 0 {
                        report.rejected_targets += 1;
                        return;
                    }
                    probes_left -= 1;
                    let inputs = self.merge_inputs(&target.parent_inputs, &probe);
                    self.execute_and_expand(
                        inputs,
                        Origin::Probe { target: id },
                        None,
                        SymbolicMode::Uninterpreted,
                        summarize,
                        report,
                        worklist,
                        samples_acc,
                    );
                    // Retry validity with the enriched sample table.
                }
                ValidityOutcome::Invalid { .. } | ValidityOutcome::Unknown => {
                    report.rejected_targets += 1;
                    return;
                }
            }
        }
    }

    /// Interprets a validity strategy, probing for missing samples.
    #[allow(clippy::too_many_arguments)]
    fn run_strategy(
        &self,
        strategy: &Strategy,
        target: &Target,
        id: BranchId,
        expected: &[(BranchId, bool)],
        summarize: bool,
        probes_left: &mut usize,
        report: &mut Report,
        worklist: &mut VecDeque<Target>,
        samples_acc: &mut Samples,
    ) {
        loop {
            if report.runs.len() >= self.config.max_runs {
                return;
            }
            let samples = if self.config.cross_run_samples {
                samples_acc.clone()
            } else {
                target.parent_samples.clone()
            };
            match strategy.interpret(&samples) {
                Interpretation::Concrete(values) => {
                    let inputs = self.merge_inputs(&target.parent_inputs, &values);
                    let rendered = strategy.display(self.ctx.sig()).to_string();
                    self.execute_and_expand(
                        inputs,
                        Origin::Strategy {
                            target: id,
                            strategy: rendered,
                        },
                        Some(expected),
                        SymbolicMode::Uninterpreted,
                        summarize,
                        report,
                        worklist,
                        samples_acc,
                    );
                    return;
                }
                Interpretation::NeedSamples(missing) => {
                    if *probes_left == 0 {
                        report.rejected_targets += 1;
                        return;
                    }
                    *probes_left -= 1;
                    // Intermediate test: parent inputs with the concrete
                    // part of the strategy applied (paper: probe
                    // (x = 567, y = 10) to learn h(10)).
                    let partial = strategy.interpret_partial(&samples);
                    let inputs = self.merge_inputs(&target.parent_inputs, &partial);
                    let run = self.execute_and_expand(
                        inputs,
                        Origin::Probe { target: id },
                        None,
                        SymbolicMode::Uninterpreted,
                        summarize,
                        report,
                        worklist,
                        samples_acc,
                    );
                    // If the probe did not record any of the missing
                    // samples, the program never evaluates those
                    // applications on this prefix: give up.
                    let learned = missing
                        .iter()
                        .any(|(f, args)| run.samples.lookup(*f, args).is_some());
                    if !learned && !self.config.cross_run_samples {
                        report.rejected_targets += 1;
                        return;
                    }
                    let now_known = missing
                        .iter()
                        .all(|(f, args)| samples_acc.lookup(*f, args).is_some());
                    if !now_known && *probes_left == 0 {
                        report.rejected_targets += 1;
                        return;
                    }
                }
            }
        }
    }
}
