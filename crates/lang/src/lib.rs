//! The `mini` imperative language: the program substrate on which
//! higher-order test generation runs.
//!
//! The paper (Godefroid, *Higher-Order Test Generation*, PLDI 2011, §2)
//! formalizes programs as sequences of assignments and conditionals over
//! input parameters, with "unknown functions/instructions" — `hash`,
//! crypto, OS calls, exotic instructions — causing imprecision in symbolic
//! execution. `mini` realizes exactly that model:
//!
//! * integer scalars and fixed-length integer arrays (inputs or locals);
//! * `if`/`else`, `while`, assignments;
//! * `error(code)` statements (the paper's buggy `return -1` stops);
//! * **native functions**: declared `native name/arity;`, implemented by
//!   arbitrary Rust closures in a [`NativeRegistry`] — executed for real
//!   at run time, opaque to symbolic reasoning.
//!
//! The crate provides the lexer, parser, static checker, a concrete
//! interpreter with branch/native-call tracing, a bytecode fast path
//! ([`compile`] once per campaign, execute with [`vm`]), and [`corpus`]
//! — every example program from the paper.
//!
//! # Example
//!
//! ```
//! use hotg_lang::{corpus, run, InputVector, Outcome};
//!
//! let (program, natives) = corpus::obscure();
//! let (outcome, trace) = run(&program, &natives, &InputVector::new(vec![567, 42]), 10_000);
//! assert_eq!(outcome, Outcome::Error(1));
//! assert_eq!(trace.native_calls[0].0, "hash");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod compile;
pub mod corpus;
pub mod diag;
pub mod interp;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod vm;

pub use ast::{stmt_ids, BinOp, BranchId, Expr, FuncDef, NativeDecl, Param, Program, Stmt, UnOp};
pub use check::{check, CheckError};
pub use compile::{compile, CompileError, CompiledProgram, Instr};
pub use diag::{DiagCode, Diagnostic, Severity, Span, SpanTable, StmtId};
pub use interp::{
    call_function, eval_binop, eval_expr, run, CVal, Env, EvalError, Fault, FaultKind, InputVector,
    NativeRegistry, Outcome, Slot, Trace,
};
pub use parser::{parse, ParseError};
pub use vm::{run_compiled, run_compiled_counted};
