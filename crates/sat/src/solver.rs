//! CDCL solver implementation.

use std::fmt;

/// A propositional literal: a boolean variable index with a polarity.
///
/// Encoded as `2·var + (negated ? 1 : 0)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of variable `v`.
    pub fn pos(v: u32) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of variable `v`.
    pub fn neg(v: u32) -> Lit {
        Lit((v << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    pub fn new(v: u32, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable index.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// `true` if the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "p{}", self.var())
        } else {
            write!(f, "~p{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Result of a satisfiability call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with one assignment per variable (indexed by variable).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

type ClauseRef = u32;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// A CDCL SAT solver over clauses added with [`SatSolver::add_clause`].
///
/// The solver is incremental in two senses: clauses may be added between
/// [`SatSolver::solve`] calls (solving restarts from scratch, keeping
/// learned clauses), and an assertion stack ([`SatSolver::push`] /
/// [`SatSolver::pop`]) scopes clauses to retractable frames via
/// activation literals, so learned clauses survive a `pop` soundly.
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    /// watches[lit.index()] = clauses currently watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    /// Clauses of length 0/1 seen at add time; empty clause ⇒ trivially UNSAT.
    trivially_unsat: bool,
    units: Vec<Lit>,
    /// Activation variable of each open assertion frame (innermost last).
    /// Clauses added while a frame is open carry the negation of its
    /// activation literal; `solve` asserts the literals of all open
    /// frames as assumption decisions.
    frames: Vec<u32>,
    /// Lifetime count of learned clauses (observability for the SMT
    /// layer's clause-reuse accounting).
    learned: u64,
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            ..SatSolver::default()
        }
    }

    /// Allocates a fresh boolean variable and returns its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of allocated variables.
    pub fn var_count(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (including learned clauses).
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Opens a new assertion frame: clauses added until the matching
    /// [`SatSolver::pop`] are retractable as a group. Frames nest
    /// (stack discipline). Returns the frame's activation variable.
    pub fn push(&mut self) -> u32 {
        let a = self.new_var();
        self.frames.push(a);
        a
    }

    /// Closes the innermost assertion frame, retracting its clauses.
    ///
    /// Retraction is by permanent deactivation: the frame's activation
    /// literal is forced false, which satisfies (and thereby silences)
    /// every clause of the frame *and* every learned clause derived from
    /// them — so clause learning carries over between frames soundly.
    ///
    /// # Panics
    ///
    /// Panics if no frame is open.
    pub fn pop(&mut self) {
        let a = self.frames.pop().expect("pop without matching push");
        // Deliberately bypasses add_clause: the deactivation unit must be
        // permanent (root-level), not tagged with an enclosing frame.
        self.units.push(Lit::neg(a));
    }

    /// Number of currently open assertion frames.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// Adds a clause at the root, bypassing any open frame: the clause is
    /// permanent and survives every `pop`. For clauses that are valid
    /// independent of the current frame (theory lemmas, definitional
    /// clauses of persistent variables).
    pub fn add_root_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let frames = std::mem::take(&mut self.frames);
        self.add_clause(lits);
        self.frames = frames;
    }

    /// Lifetime count of learned clauses.
    pub fn learned_count(&self) -> u64 {
        self.learned
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Duplicate literals are removed; tautological clauses are dropped.
    /// An empty clause makes the instance trivially unsatisfiable. While
    /// an assertion frame is open the clause is tagged with the frame's
    /// activation literal and holds only until the matching
    /// [`SatSolver::pop`].
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        if let Some(&a) = self.frames.last() {
            ls.push(Lit::neg(a));
        }
        for l in &ls {
            assert!(
                (l.var() as usize) < self.assign.len(),
                "literal {l:?} references unallocated variable"
            );
        }
        ls.sort();
        ls.dedup();
        // Tautology check: p and ~p adjacent after sort.
        if ls.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        match ls.len() {
            0 => self.trivially_unsat = true,
            1 => self.units.push(ls[0]),
            _ => {
                let cref = self.clauses.len() as ClauseRef;
                self.watches[ls[0].index()].push(cref);
                self.watches[ls[1].index()].push(cref);
                self.clauses.push(Clause { lits: ls });
            }
        }
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|b| b == l.is_positive())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var() as usize;
                self.assign[v] = Some(l.is_positive());
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Propagates until fixpoint; returns a conflicting clause if found.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !lit; // literals watching ¬lit must react
            let mut i = 0;
            'clauses: while i < self.watches[false_lit.index()].len() {
                let cref = self.watches[false_lit.index()][i];
                // Make sure false_lit is at position 1.
                let lits = &mut self.clauses[cref as usize].lits;
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                if self.assign[first.var() as usize].map(|b| b == first.is_positive()) == Some(true)
                {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                for k in 2..lits.len() {
                    let lk = lits[k];
                    let val = self.assign[lk.var() as usize].map(|b| b == lk.is_positive());
                    if val != Some(false) {
                        lits.swap(1, k);
                        let moved = lits[1];
                        self.watches[false_lit.index()].swap_remove(i);
                        self.watches[moved.index()].push(cref);
                        continue 'clauses;
                    }
                }
                // No new watch: clause is unit or conflicting on `first`.
                if !self.enqueue(first, Some(cref)) {
                    return Some(cref);
                }
                i += 1;
            }
        }
        None
    }

    fn bump(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump level).
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::pos(0)]; // slot 0 for the asserting literal
        let mut seen = vec![false; self.assign.len()];
        let mut counter = 0usize;
        let mut cref = conflict;
        let mut trail_idx = self.trail.len();
        let mut asserting = None;
        let current = self.decision_level();

        loop {
            let clause_lits = self.clauses[cref as usize].lits.clone();
            for q in clause_lits {
                // Skip the literal we are resolving on: it occurs in its
                // reason clause with its assigned polarity.
                if Some(q) == asserting {
                    continue;
                }
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Pick the next literal from the trail to resolve.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var() as usize] {
                    asserting = Some(l);
                    break;
                }
            }
            let l = asserting.expect("asserting literal");
            seen[l.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = !l;
                break;
            }
            cref = self.reason[l.var() as usize].expect("non-decision must have a reason");
        }

        // Backjump level: max level among learned[1..].
        let bj = learned[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        (learned, bj)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("trail_lim");
            for l in self.trail.drain(lim..) {
                let v = l.var() as usize;
                self.assign[v] = None;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&self) -> Option<Lit> {
        let mut best: Option<(u32, f64)> = None;
        for (v, a) in self.assign.iter().enumerate() {
            if a.is_none() {
                let act = self.activity[v];
                if best.is_none_or(|(_, b)| act > b) {
                    best = Some((v as u32, act));
                }
            }
        }
        best.map(|(v, _)| Lit::neg(v)) // negative-first polarity
    }

    fn learn(&mut self, lits: Vec<Lit>) -> Option<ClauseRef> {
        self.learned += 1;
        match lits.len() {
            0 => None,
            1 => None,
            _ => {
                let cref = self.clauses.len() as ClauseRef;
                self.watches[lits[0].index()].push(cref);
                self.watches[lits[1].index()].push(cref);
                self.clauses.push(Clause { lits });
                Some(cref)
            }
        }
    }

    /// Decides satisfiability of the current clause set under the open
    /// assertion frames.
    ///
    /// The activation literal of every open frame is asserted as an
    /// assumption *decision* (at levels ≥ 1, never at the root): conflict
    /// analysis skips only root-level literals, so learned clauses that
    /// depend on a frame inherit the frame's (negated) activation literal
    /// and are silenced — not invalidated — by the frame's `pop`. With no
    /// frames open this is the plain CDCL loop.
    ///
    /// On `Sat`, the returned vector maps each variable index to its value.
    pub fn solve(&mut self) -> SatResult {
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        // Full restart (keep learned clauses).
        self.cancel_until(0);
        self.trail.clear();
        self.qhead = 0;
        for a in &mut self.assign {
            *a = None;
        }
        for r in &mut self.reason {
            *r = None;
        }
        // Root-level units.
        let units = std::mem::take(&mut self.units);
        for u in &units {
            if !self.enqueue(*u, None) {
                self.units = units;
                return SatResult::Unsat;
            }
        }
        self.units = units;

        let assumptions: Vec<Lit> = self.frames.iter().map(|&a| Lit::pos(a)).collect();
        let mut conflicts_until_restart = 100u64;
        let mut conflicts = 0u64;

        loop {
            if let Some(conflict) = self.propagate() {
                conflicts += 1;
                if self.decision_level() == 0 {
                    return SatResult::Unsat;
                }
                let (learned, bj) = self.analyze(conflict);
                self.cancel_until(bj);
                let assert_lit = learned[0];
                let reason = self.learn(learned);
                let ok = self.enqueue(assert_lit, reason);
                debug_assert!(ok, "asserting literal must be enqueueable");
                self.var_inc *= 1.05;
                if conflicts >= conflicts_until_restart {
                    conflicts = 0;
                    conflicts_until_restart = (conflicts_until_restart * 3) / 2;
                    self.cancel_until(0);
                }
            } else if (self.decision_level() as usize) < assumptions.len() {
                // Re-assert the next pending frame assumption (restarts and
                // backjumps may retract them; this loop restores the prefix).
                let next = assumptions[self.decision_level() as usize];
                match self.value(next) {
                    // Already implied: open an empty pseudo-level so
                    // deeper assumptions keep their positions.
                    Some(true) => self.trail_lim.push(self.trail.len()),
                    // Implied false at or below this prefix: the open
                    // frames contradict the root clauses.
                    Some(false) => return SatResult::Unsat,
                    None => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(next, None);
                        debug_assert!(ok);
                    }
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let model = self
                            .assign
                            .iter()
                            .map(|a| a.expect("complete assignment"))
                            .collect();
                        return SatResult::Sat(model);
                    }
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_sat(n_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        for mask in 0u64..(1 << n_vars) {
            let sat = clauses.iter().all(|c| {
                c.iter()
                    .any(|l| ((mask >> l.var()) & 1 == 1) == l.is_positive())
            });
            if sat {
                return true;
            }
        }
        false
    }

    fn check_model(model: &[bool], clauses: &[Vec<Lit>]) -> bool {
        clauses
            .iter()
            .all(|c| c.iter().any(|l| model[l.var() as usize] == l.is_positive()))
    }

    #[test]
    fn lit_encoding() {
        let p = Lit::pos(3);
        assert_eq!(p.var(), 3);
        assert!(p.is_positive());
        assert!(!(!p).is_positive());
        assert_eq!(!!p, p);
        assert_eq!(Lit::new(2, false), Lit::neg(2));
        assert_eq!(format!("{:?}", Lit::neg(1)), "~p1");
    }

    #[test]
    fn empty_instance_is_sat() {
        let mut s = SatSolver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        s.add_clause([]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = SatSolver::new();
        let vs: Vec<u32> = (0..5).map(|_| s.new_var()).collect();
        s.add_clause([Lit::pos(vs[0])]);
        for w in vs.windows(2) {
            s.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]); // v_i → v_{i+1}
        }
        match s.solve() {
            SatResult::Sat(m) => assert!(vs.iter().all(|&v| m[v as usize])),
            SatResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn contradiction_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        s.add_clause([Lit::neg(a)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_dropped() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a), Lit::neg(a)]);
        assert_eq!(s.clause_count(), 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_literals_merged() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(a)]);
        // Reduced to a unit clause.
        match s.solve() {
            SatResult::Sat(m) => assert!(m[a as usize]),
            SatResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn xor_chain_sat() {
        // (a ⊕ b) encoded in CNF, chained: forces alternation.
        let mut s = SatSolver::new();
        let vs: Vec<u32> = (0..8).map(|_| s.new_var()).collect();
        for w in vs.windows(2) {
            s.add_clause([Lit::pos(w[0]), Lit::pos(w[1])]);
            s.add_clause([Lit::neg(w[0]), Lit::neg(w[1])]);
        }
        match s.solve() {
            SatResult::Sat(m) => {
                for w in vs.windows(2) {
                    assert_ne!(m[w[0] as usize], m[w[1] as usize]);
                }
            }
            SatResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes.
        let mut s = SatSolver::new();
        let mut p = [[0u32; 2]; 3];
        for (i, row) in p.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let _ = (i, j);
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        assert!(s.solve().is_sat());
        s.add_clause([Lit::neg(a)]);
        assert!(s.solve().is_sat());
        s.add_clause([Lit::neg(b)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        // Deterministic LCG so the test is reproducible without a rand dep.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..200 {
            let n_vars = 3 + (next() % 8) as usize; // 3..10
            let n_clauses = 2 + (next() % 40) as usize;
            let mut s = SatSolver::new();
            for _ in 0..n_vars {
                s.new_var();
            }
            let mut clauses = Vec::new();
            for _ in 0..n_clauses {
                let len = 1 + (next() % 3) as usize;
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(next() % n_vars as u32, next() % 2 == 0))
                    .collect();
                clauses.push(clause.clone());
                s.add_clause(clause);
            }
            let expect = brute_force_sat(n_vars, &clauses);
            match s.solve() {
                SatResult::Sat(m) => {
                    assert!(expect, "round {round}: solver SAT but brute force UNSAT");
                    assert!(
                        check_model(&m, &clauses),
                        "round {round}: model does not satisfy clauses"
                    );
                }
                SatResult::Unsat => {
                    assert!(!expect, "round {round}: solver UNSAT but brute force SAT");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unallocated variable")]
    fn unallocated_variable_panics() {
        let mut s = SatSolver::new();
        s.add_clause([Lit::pos(0)]);
    }

    #[test]
    fn push_pop_retracts_clauses() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        assert!(s.solve().is_sat());
        s.push();
        s.add_clause([Lit::neg(a)]);
        assert_eq!(s.frame_depth(), 1);
        assert_eq!(s.solve(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.frame_depth(), 0);
        match s.solve() {
            SatResult::Sat(m) => assert!(m[a as usize]),
            SatResult::Unsat => panic!("popped frame must not constrain"),
        }
    }

    #[test]
    fn nested_frames_retract_in_stack_order() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.push();
        s.add_clause([Lit::neg(a)]);
        s.push();
        s.add_clause([Lit::neg(b)]);
        assert_eq!(s.solve(), SatResult::Unsat);
        s.pop(); // ¬b retracted; ¬a still active
        match s.solve() {
            SatResult::Sat(m) => {
                assert!(!m[a as usize]);
                assert!(m[b as usize]);
            }
            SatResult::Unsat => panic!("expected SAT after inner pop"),
        }
        s.pop();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn learned_clauses_stay_sound_after_pop() {
        // Force real conflict-driven learning inside a frame (PHP(3,2)
        // on frame-scoped clauses over root variables), then pop and
        // check the root instance is still seen as satisfiable with a
        // correct model — i.e. retained learned clauses did not leak the
        // frame's constraints.
        let mut s = SatSolver::new();
        let mut p = [[0u32; 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        // Root: every pigeon somewhere (satisfiable alone).
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        s.push();
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.learned_count() > 0, "PHP must trigger learning");
        s.pop();
        match s.solve() {
            SatResult::Sat(m) => {
                for row in &p {
                    assert!(row.iter().any(|&v| m[v as usize]));
                }
            }
            SatResult::Unsat => panic!("root instance is satisfiable"),
        }
    }

    #[test]
    fn random_incremental_matches_brute_force() {
        // Random base instance; repeatedly push a frame of extra random
        // clauses, compare against brute force of base+frame, pop, and
        // compare against base alone — with learned clauses accumulating
        // across the whole sequence.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..60 {
            let n_vars = 3 + (next() % 6) as usize; // 3..9
            let mut s = SatSolver::new();
            for _ in 0..n_vars {
                s.new_var();
            }
            let mut base = Vec::new();
            for _ in 0..(2 + (next() % 15) as usize) {
                let len = 1 + (next() % 3) as usize;
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(next() % n_vars as u32, next() % 2 == 0))
                    .collect();
                base.push(clause.clone());
                s.add_clause(clause);
            }
            for step in 0..4 {
                s.push();
                let mut extra = base.clone();
                for _ in 0..(1 + (next() % 8) as usize) {
                    let len = 1 + (next() % 3) as usize;
                    let clause: Vec<Lit> = (0..len)
                        .map(|_| Lit::new(next() % n_vars as u32, next() % 2 == 0))
                        .collect();
                    extra.push(clause.clone());
                    s.add_clause(clause);
                }
                let expect = brute_force_sat(n_vars, &extra);
                match s.solve() {
                    SatResult::Sat(m) => {
                        assert!(expect, "round {round} step {step}: spurious SAT");
                        assert!(
                            check_model(&m[..n_vars], &extra),
                            "round {round} step {step}: bad model"
                        );
                    }
                    SatResult::Unsat => {
                        assert!(!expect, "round {round} step {step}: spurious UNSAT");
                    }
                }
                s.pop();
                let expect_base = brute_force_sat(n_vars, &base);
                match s.solve() {
                    SatResult::Sat(m) => {
                        assert!(expect_base, "round {round} step {step}: post-pop SAT drift");
                        assert!(
                            check_model(&m[..n_vars], &base),
                            "round {round} step {step}: post-pop bad model"
                        );
                    }
                    SatResult::Unsat => {
                        assert!(
                            !expect_base,
                            "round {round} step {step}: post-pop UNSAT drift"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        let mut s = SatSolver::new();
        s.pop();
    }
}
