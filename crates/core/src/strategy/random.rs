//! The blackbox random-testing baseline (§7).

use super::{Strategy, TargetCx};
use crate::config::Technique;
use crate::engine::outcome::{Job, TargetOutcome};
use hotg_concolic::{ExecProfile, SymbolicMode};

/// Blackbox random testing: no symbolic evaluation, no targets, no
/// solver. The engine runs the random campaign loop itself; this
/// strategy only declares itself non-directed.
pub(crate) struct Random;

impl Strategy for Random {
    fn technique(&self) -> Technique {
        Technique::Random
    }

    fn profile(&self) -> ExecProfile {
        // Never used: the random baseline executes concretely. The mode
        // here is only a placeholder so the trait stays uniform.
        ExecProfile::new(SymbolicMode::UnsoundConcretize)
    }

    fn is_directed(&self) -> bool {
        false
    }

    fn process_target(&self, _cx: &TargetCx<'_, '_>, _job: &Job, _out: &mut TargetOutcome) {
        unreachable!("random is not a directed search")
    }
}
