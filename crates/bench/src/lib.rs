//! Shared experiment machinery for the reproduction binaries and
//! benchmarks.
//!
//! [`paper_examples`] evaluates every worked example of the paper
//! (Sections 1, 3, 5) as a mechanical claim check; the `experiments`
//! binary prints the resulting table, and the integration tests assert
//! every row passes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hotg_core::{Driver, DriverConfig, Technique};
use hotg_lang::corpus;

/// One reproduced paper claim.
#[derive(Clone, Debug)]
pub struct ExperimentRow {
    /// Experiment id (paper section / example number).
    pub id: &'static str,
    /// Program under test.
    pub program: &'static str,
    /// Technique exercised.
    pub technique: Technique,
    /// The paper's claim, verbatim-ish.
    pub claim: &'static str,
    /// What we measured.
    pub measured: String,
    /// Whether the measurement matches the claim.
    pub pass: bool,
}

fn driver_config(initial: Vec<i64>) -> DriverConfig {
    DriverConfig {
        max_runs: 40,
        ..DriverConfig::with_initial(initial)
    }
}

fn run(name: &'static str, initial: Vec<i64>, technique: Technique) -> hotg_core::Report {
    let (program, natives) = corpus::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, ctor)| ctor())
        .unwrap_or_else(|| panic!("unknown corpus program {name}"));
    let driver = Driver::new(&program, &natives, driver_config(initial));
    driver.run(technique)
}

/// Reproduces every worked example of the paper and returns one row per
/// claim.
pub fn paper_examples() -> Vec<ExperimentRow> {
    let mut rows = Vec::new();

    // §1 `obscure`: dynamic test generation covers both branches; static
    // (here: blackbox random, which also lacks the runtime values) fails.
    for technique in [
        Technique::DartUnsound,
        Technique::DartSound,
        Technique::HigherOrder,
    ] {
        let r = run("obscure", vec![33, 42], technique);
        rows.push(ExperimentRow {
            id: "S1-OBSCURE",
            program: "obscure",
            technique,
            claim: "error branch covered on 2nd run",
            measured: format!("first_hit={:?}", r.first_hit(1)),
            pass: r.first_hit(1) == Some(1),
        });
    }
    let r = run("obscure", vec![33, 42], Technique::Random);
    rows.push(ExperimentRow {
        id: "S1-OBSCURE",
        program: "obscure",
        technique: Technique::Random,
        claim: "random cannot invert hash",
        measured: format!("errors={:?}", r.errors),
        pass: !r.found_error(1),
    });

    // §3.2 `foo`: unsound pc diverges.
    let r = run("foo", vec![567, 42], Technique::DartUnsound);
    rows.push(ExperimentRow {
        id: "S3.2-FOO",
        program: "foo",
        technique: Technique::DartUnsound,
        claim: "negating unsound pc causes divergence",
        measured: format!("divergences={}", r.divergences),
        pass: r.divergences >= 1,
    });

    // Example 1: sound concretization rejects the alternate pc, missing
    // the error, with no divergences.
    let r = run("foo", vec![567, 42], Technique::DartSound);
    rows.push(ExperimentRow {
        id: "EX1",
        program: "foo",
        technique: Technique::DartSound,
        claim: "alternate pc UNSAT; error missed; no divergence",
        measured: format!(
            "errors={:?} rejected={} div={}",
            r.errors, r.rejected_targets, r.divergences
        ),
        pass: !r.found_error(1) && r.rejected_targets >= 1 && r.divergences == 0,
    });

    // Example 7: higher-order reaches the error via a two-step probe.
    let r = run("foo", vec![567, 42], Technique::HigherOrder);
    rows.push(ExperimentRow {
        id: "EX7",
        program: "foo",
        technique: Technique::HigherOrder,
        claim: "two-step generation hits the error",
        measured: format!("errors={:?} probes={}", r.errors, r.probes),
        pass: r.found_error(1) && r.probes >= 1,
    });

    // Example 2 `foo-bis`: sound misses; unsound reaches it (good
    // divergence).
    let r = run("foo_bis", vec![33, 42], Technique::DartSound);
    rows.push(ExperimentRow {
        id: "EX2",
        program: "foo_bis",
        technique: Technique::DartSound,
        claim: "sound concretization misses the error",
        measured: format!("errors={:?}", r.errors),
        pass: !r.found_error(1),
    });
    let r = run("foo_bis", vec![33, 42], Technique::DartUnsound);
    rows.push(ExperimentRow {
        id: "EX2",
        program: "foo_bis",
        technique: Technique::DartUnsound,
        claim: "unsound concretization reaches the error",
        measured: format!("errors={:?}", r.errors),
        pass: r.found_error(1),
    });

    // Example 3 `bar`: unsound diverges; higher-order proves invalidity
    // and generates nothing.
    let r = run("bar", vec![33, 42], Technique::DartUnsound);
    rows.push(ExperimentRow {
        id: "EX3",
        program: "bar",
        technique: Technique::DartUnsound,
        claim: "unsound concretization diverges",
        measured: format!("divergences={}", r.divergences),
        pass: r.divergences >= 1,
    });
    let r = run("bar", vec![33, 42], Technique::HigherOrder);
    rows.push(ExperimentRow {
        id: "EX3",
        program: "bar",
        technique: Technique::HigherOrder,
        claim: "invalid formula, no test generated",
        measured: format!("runs={} rejected={}", r.total_runs(), r.rejected_targets),
        pass: r.total_runs() == 1 && r.rejected_targets >= 1,
    });

    // Example 4 `pub`: both sound concretization and higher-order (with
    // samples) reach the error.
    for technique in [Technique::DartSound, Technique::HigherOrder] {
        let r = run("pub", vec![1, 2], technique);
        rows.push(ExperimentRow {
            id: "EX4",
            program: "pub",
            technique,
            claim: "error reached using runtime observations",
            measured: format!("errors={:?}", r.errors),
            pass: r.found_error(1),
        });
    }

    // Example 5: only higher-order covers f(x) = f(y).
    for (technique, expect) in [
        (Technique::DartUnsound, false),
        (Technique::DartSound, false),
        (Technique::HigherOrder, true),
    ] {
        let r = run("euf_eq", vec![5, 6], technique);
        rows.push(ExperimentRow {
            id: "EX5",
            program: "euf_eq",
            technique,
            claim: if expect {
                "EUF strategy x := y covers the branch"
            } else {
                "concretization cannot justify f(x)=f(y)"
            },
            measured: format!("errors={:?}", r.errors),
            pass: r.found_error(1) == expect,
        });
    }

    // Example 6: only higher-order covers f(x) = f(y) + 1 (via samples).
    for (technique, expect) in [
        (Technique::DartSound, false),
        (Technique::HigherOrder, true),
    ] {
        let r = run("euf_offset", vec![5, 6], technique);
        rows.push(ExperimentRow {
            id: "EX6",
            program: "euf_offset",
            technique,
            claim: if expect {
                "antecedent samples make the formula valid"
            } else {
                "concretization cannot relate f(x) and f(y)+1"
            },
            measured: format!("errors={:?}", r.errors),
            pass: r.found_error(1) == expect,
        });
    }

    // §8: higher-order compositional test generation on the summarized
    // helper program.
    for technique in [Technique::HigherOrderCompositional, Technique::HigherOrder] {
        let r = run("composed", vec![0, 0], technique);
        rows.push(ExperimentRow {
            id: "S8-COMP",
            program: "composed",
            technique,
            claim: "summaries + UF samples reach the deep error",
            measured: format!("errors={:?} probes={}", r.errors, r.probes),
            pass: r.found_error(1),
        });
    }

    // Static oracle (`hotg-analysis`): on the lint showcase program the
    // driver prunes the statically-decided inner branch's flip target
    // before any validity query and pre-samples `hash(7)`, while still
    // finding the error behind `x == hash(7) + 1`.
    let r = run("lint_demo", vec![0], Technique::HigherOrder);
    rows.push(ExperimentRow {
        id: "STATIC-ORCL",
        program: "lint_demo",
        technique: Technique::HigherOrder,
        claim: "oracle prunes targets, pre-samples, keeps errors",
        measured: format!(
            "pruned={} presampled={} errors={:?}",
            r.targets_pruned_static, r.presampled_sites, r.errors
        ),
        pass: r.targets_pruned_static >= 1 && r.presampled_sites == 1 && r.found_error(1),
    });

    // §3.3 final remark: delayed concretization variant.
    let r = run("delayed", vec![33, 42], Technique::DartSound);
    rows.push(ExperimentRow {
        id: "S3.3-DELAY",
        program: "delayed",
        technique: Technique::DartSound,
        claim: "eager pinning blocks the y == 10 branch",
        measured: format!("errors={:?}", r.errors),
        pass: !r.found_error(1),
    });
    let r = run("delayed", vec![33, 42], Technique::DartSoundDelayed);
    rows.push(ExperimentRow {
        id: "S3.3-DELAY",
        program: "delayed",
        technique: Technique::DartSoundDelayed,
        claim: "delayed pinning covers the y == 10 branch",
        measured: format!("errors={:?} div={}", r.errors, r.divergences),
        pass: r.found_error(1) && r.divergences == 0,
    });

    rows
}

/// Renders experiment rows as a fixed-width table.
pub fn render_rows(rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<11} {:<12} {:<13} {:<6} {:<44} {}\n",
        "experiment", "program", "technique", "status", "paper claim", "measured"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:<12} {:<13} {:<6} {:<44} {}\n",
            r.id,
            r.program,
            r.technique.name(),
            if r.pass { "PASS" } else { "FAIL" },
            r.claim,
            r.measured
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_examples_pass() {
        let rows = paper_examples();
        assert!(rows.len() >= 18);
        let failures: Vec<&ExperimentRow> = rows.iter().filter(|r| !r.pass).collect();
        assert!(
            failures.is_empty(),
            "failed rows:\n{}",
            render_rows(
                &failures
                    .into_iter()
                    .cloned()
                    .collect::<Vec<ExperimentRow>>()
            )
        );
    }

    #[test]
    fn render_is_tabular() {
        let rows = paper_examples();
        let s = render_rows(&rows);
        assert!(s.contains("experiment"));
        assert!(s.lines().count() >= rows.len());
    }
}
