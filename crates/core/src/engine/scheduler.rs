//! Generation scheduling for the directed search: dedup filtering of
//! each generation's targets (merge thread), the worker pool that
//! processes surviving targets in parallel against a sample-table
//! snapshot, and the in-order merge that turns worker outcomes into
//! events. See the [engine module docs](crate::engine) for the
//! determinism argument.

use super::outcome::{Job, TargetOutcome};
use super::state::CampaignState;
use super::{merge, resume, Emitter, Engine};
use crate::events::CampaignEvent;
use crate::report::Origin;
use crate::strategy::Strategy;
use crate::summaries::{SummaryConfig, SummaryTable};
use hotg_solver::{SmtSession, SmtSolver, ValidityChecker};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

impl Engine<'_> {
    /// The generational directed search shared by every whitebox
    /// strategy: seed runs, then breadth-first generations of
    /// branch-flip targets, each processed by
    /// [`Strategy::process_target`] and merged in target order.
    pub(crate) fn directed(&self, strategy: &dyn Strategy, em: &mut Emitter<'_>) {
        let profile = strategy.profile();
        let summaries = if profile.summarize_calls && !self.program.functions.is_empty() {
            Some(SummaryTable::compute(
                self.program,
                self.natives,
                &SummaryConfig::default(),
            ))
        } else {
            None
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut st = CampaignState::default();
        // Both solvers intern through the driver-owned campaign arena, so
        // normalization/fingerprint work is shared between them (and with
        // escalated/deadline-reconfigured clones).
        let smt =
            SmtSolver::with_config(self.config.validity.smt).with_arena(Arc::clone(self.arena));
        let smt = match &self.config.query_log {
            Some(log) => smt.with_recorder(Arc::clone(log)),
            None => smt,
        };
        let validity =
            ValidityChecker::with_config(self.config.validity).with_arena(Arc::clone(self.arena));
        let campaign_end = self.campaign_end();
        // Session reuse totals across the campaign's generations.
        let mut session_queries = 0u64;
        let mut session_clauses_reused = 0u64;

        self.seed_phase(strategy, &mut rng, &mut st, |e| em.emit(e));

        let threads = self.config.threads.max(1);
        'search: while !st.pending.is_empty() && em.report.runs.len() < self.config.max_runs {
            if em.fail_fast_tripped() {
                break;
            }
            if campaign_end.expired() {
                em.emit(CampaignEvent::CampaignTimedOut);
                break;
            }
            let (jobs, _fresh_keys) = st.filter_generation();
            if jobs.is_empty() {
                break;
            }
            em.emit(CampaignEvent::GenerationStarted {
                index: em.report.generation_widths.len(),
                width: jobs.len(),
            });
            for (ordinal, job) in jobs.iter().enumerate() {
                em.emit(CampaignEvent::TargetScheduled {
                    target: job.id,
                    ordinal,
                });
            }
            // Snapshot of the sample table all of this generation's
            // targets are checked against (per-target probe runs extend a
            // thread-local copy).
            let snapshot = st.samples.clone();
            // One solver session per generation: sibling targets share
            // the query cache and arena always, and — when incremental
            // solving is configured — one persistent boolean core with
            // its learned clauses.
            let session = SmtSession::for_solver(&smt);
            let mut stop = false;
            // Stage A (resume replay): while the recorded prefix still
            // covers whole targets, reconstruct each outcome from the
            // trace instead of redoing its solver work. Every
            // reconstructed run is re-executed and verified against the
            // recorded record; any inconsistency stops the stage and the
            // remaining targets are processed live (stage B), which
            // abandons the replay at the first diverging event.
            let mut start = 0;
            while start < jobs.len() && em.replay_active() && !stop {
                if em.report.runs.len() >= self.config.max_runs {
                    stop = true;
                    break;
                }
                if campaign_end.expired() {
                    em.emit(CampaignEvent::CampaignTimedOut);
                    stop = true;
                    break;
                }
                if em.fail_fast_tripped() {
                    stop = true;
                    break;
                }
                let Some(out) =
                    resume::reconstruct_outcome(self, strategy, &jobs[start], em.replay_rest())
                else {
                    break;
                };
                self.merge_outcome(&jobs[start], out, em, &mut st);
                start += 1;
            }
            let live = &jobs[start..];
            if stop {
                // fall through to session accounting, then stop
            } else if threads == 1 || live.len() <= 1 {
                for job in live {
                    if em.report.runs.len() >= self.config.max_runs {
                        stop = true;
                        break;
                    }
                    if campaign_end.expired() {
                        em.emit(CampaignEvent::CampaignTimedOut);
                        stop = true;
                        break;
                    }
                    if em.fail_fast_tripped() {
                        stop = true;
                        break;
                    }
                    let out = self.process_target(
                        strategy,
                        job,
                        &snapshot,
                        summaries.as_ref(),
                        &smt,
                        &session,
                        &validity,
                        campaign_end,
                    );
                    self.merge_outcome(job, out, em, &mut st);
                }
            } else {
                let outcomes = run_pool(threads, live, |job| {
                    self.process_target(
                        strategy,
                        job,
                        &snapshot,
                        summaries.as_ref(),
                        &smt,
                        &session,
                        &validity,
                        campaign_end,
                    )
                });
                for (job, out) in live.iter().zip(outcomes) {
                    if em.report.runs.len() >= self.config.max_runs {
                        stop = true;
                        break;
                    }
                    if campaign_end.expired() {
                        em.emit(CampaignEvent::CampaignTimedOut);
                        stop = true;
                        break;
                    }
                    if em.fail_fast_tripped() {
                        stop = true;
                        break;
                    }
                    self.merge_outcome(job, out, em, &mut st);
                }
            }
            session_queries += session.queries();
            session_clauses_reused += session.clauses_reused();
            if stop {
                break 'search;
            }
        }
        let stats = smt.cache_stats().merged(validity.cache_stats());
        em.emit(CampaignEvent::CacheStats {
            hits: stats.hits,
            misses: stats.misses,
        });
        em.emit(CampaignEvent::SolverSessionStats {
            queries: session_queries,
            intern_hits: self.arena.stats().intern_hits,
            clauses_reused: session_clauses_reused,
        });
        // Pre-solver cascade totals: the SMT solver's and validity
        // checker's cascades are distinct (the checker wraps its own
        // solver), so merge their counters like the cache stats above.
        let backend = match (smt.backend_stats(), validity.backend_stats()) {
            (Some(a), Some(b)) => Some(a.merged(b)),
            (a, b) => a.or(b),
        };
        if let Some(b) = backend {
            em.emit(CampaignEvent::BackendStats {
                backend: b.backend.to_string(),
                queries: b.queries,
                unsat_short_circuits: b.unsat_short_circuits,
                valid_short_circuits: b.valid_short_circuits,
                sat_short_circuits: b.sat_short_circuits,
            });
        }
    }

    /// The campaign preamble every directed campaign shares, emitted
    /// through `emit` so the single-shard path (canonical emitter) and
    /// the shard coordinator (canonical emitter *plus* every shard
    /// trace — the preamble is part of each shard's checkpoint) replay
    /// the identical sequence:
    ///
    /// * UF-placement oracle: native call sites whose arguments are
    ///   statically constant always evaluate the same application, so
    ///   their input/output pair is put into the `IOF` table before the
    ///   first run — a validity proof may then use the pair without a
    ///   probe execution (Figure 3's sampled table, filled eagerly);
    /// * the initial run and the seed-corpus runs, which populate the
    ///   first generation's frontier.
    pub(crate) fn seed_phase(
        &self,
        strategy: &dyn Strategy,
        rng: &mut StdRng,
        st: &mut CampaignState,
        mut emit: impl FnMut(CampaignEvent),
    ) {
        let profile = strategy.profile();
        if self.config.static_pruning {
            for site in self.analysis.native_sites() {
                let hotg_analysis::SiteClass::ConstArgs(args) = &site.class else {
                    continue;
                };
                let Some(fsym) = self.ctx.native_sym(&site.name) else {
                    continue;
                };
                if let Ok(out) = self.natives.call(&site.name, args) {
                    st.samples.record(fsym, args.clone(), out);
                    emit(CampaignEvent::SitePresampled);
                }
            }
        }
        let initial = self.initial_inputs(rng);
        let run = self.execute_run(initial, Origin::Initial, None, profile);
        for event in merge::run_unit(&run) {
            emit(event);
        }
        st.samples.merge(&run.samples);
        st.pending.extend(run.children);
        for seed_inputs in &self.config.seed_corpus {
            let run = self.execute_run(seed_inputs.clone(), Origin::Seed, None, profile);
            for event in merge::run_unit(&run) {
                emit(event);
            }
            st.samples.merge(&run.samples);
            st.pending.extend(run.children);
        }
    }

    /// Translates one target's outcome into its event block
    /// ([`merge::outcome_block`], shared with the resume gate and the
    /// shard coordinator) and folds the outcome's state effects, in
    /// target order (merge thread only). The block's final event,
    /// [`CampaignEvent::TargetClosed`], is the delimiter the resume
    /// replay splits a salvaged prefix on.
    pub(crate) fn merge_outcome(
        &self,
        job: &Job,
        out: TargetOutcome,
        em: &mut Emitter<'_>,
        st: &mut CampaignState,
    ) {
        for event in merge::outcome_block(job, &out) {
            em.emit(event);
        }
        st.fold_outcome(out);
    }
}

/// Processes every job on a scoped worker pool and returns the outcomes
/// in job order. Workers pull jobs off an atomic cursor; each outcome
/// goes into its job's slot, so the result order is independent of
/// worker scheduling.
pub(crate) fn run_pool<F>(threads: usize, jobs: &[Job], process: F) -> Vec<TargetOutcome>
where
    F: Fn(&Job) -> TargetOutcome + Sync,
{
    let slots: Vec<OnceLock<TargetOutcome>> = jobs.iter().map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else {
                    break;
                };
                let out = process(job);
                slots[i]
                    .set(out)
                    .unwrap_or_else(|_| unreachable!("each slot has exactly one owner"));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker populated slot"))
        .collect()
}
