//! Generation scheduling for the directed search: dedup filtering of
//! each generation's targets (merge thread), the worker pool that
//! processes surviving targets in parallel against a sample-table
//! snapshot, and the in-order merge that turns worker outcomes into
//! events. See the [engine module docs](crate::engine) for the
//! determinism argument.

use super::outcome::{path_key, Job, TargetOutcome, WorkerRun};
use super::{resume, Emitter, Engine, SearchState};
use crate::chaos::FaultSite;
use crate::events::CampaignEvent;
use crate::report::Origin;
use crate::strategy::Strategy;
use crate::summaries::{SummaryConfig, SummaryTable};
use hotg_solver::{SmtSession, SmtSolver, ValidityChecker};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

impl Engine<'_> {
    /// The generational directed search shared by every whitebox
    /// strategy: seed runs, then breadth-first generations of
    /// branch-flip targets, each processed by
    /// [`Strategy::process_target`] and merged in target order.
    pub(crate) fn directed(&self, strategy: &dyn Strategy, em: &mut Emitter<'_>) {
        let profile = strategy.profile();
        let summaries = if profile.summarize_calls && !self.program.functions.is_empty() {
            Some(SummaryTable::compute(
                self.program,
                self.natives,
                &SummaryConfig::default(),
            ))
        } else {
            None
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut st = SearchState::default();
        // Both solvers intern through the driver-owned campaign arena, so
        // normalization/fingerprint work is shared between them (and with
        // escalated/deadline-reconfigured clones).
        let smt =
            SmtSolver::with_config(self.config.validity.smt).with_arena(Arc::clone(self.arena));
        let smt = match &self.config.query_log {
            Some(log) => smt.with_recorder(Arc::clone(log)),
            None => smt,
        };
        let validity =
            ValidityChecker::with_config(self.config.validity).with_arena(Arc::clone(self.arena));
        let campaign_end = self.campaign_end();
        // Session reuse totals across the campaign's generations.
        let mut session_queries = 0u64;
        let mut session_clauses_reused = 0u64;

        // UF-placement oracle: native call sites whose arguments are
        // statically constant always evaluate the same application, so
        // their input/output pair can be put into the `IOF` table before
        // the first run — a validity proof may then use the pair without
        // a probe execution (Figure 3's sampled table, filled eagerly).
        if self.config.static_pruning {
            for site in self.analysis.native_sites() {
                let hotg_analysis::SiteClass::ConstArgs(args) = &site.class else {
                    continue;
                };
                let Some(fsym) = self.ctx.native_sym(&site.name) else {
                    continue;
                };
                if let Ok(out) = self.natives.call(&site.name, args) {
                    st.samples.record(fsym, args.clone(), out);
                    em.emit(CampaignEvent::SitePresampled);
                }
            }
        }

        let initial = self.initial_inputs(&mut rng);
        let run = self.execute_run(initial, Origin::Initial, None, profile);
        self.merge_run(run, em, &mut st);
        for seed_inputs in &self.config.seed_corpus {
            let run = self.execute_run(seed_inputs.clone(), Origin::Seed, None, profile);
            self.merge_run(run, em, &mut st);
        }

        let threads = self.config.threads.max(1);
        'search: while !st.pending.is_empty() && em.report.runs.len() < self.config.max_runs {
            if em.fail_fast_tripped() {
                break;
            }
            if campaign_end.expired() {
                em.emit(CampaignEvent::CampaignTimedOut);
                break;
            }
            let jobs = filter_generation(&mut st);
            if jobs.is_empty() {
                break;
            }
            em.emit(CampaignEvent::GenerationStarted {
                index: em.report.generation_widths.len(),
                width: jobs.len(),
            });
            for job in &jobs {
                em.emit(CampaignEvent::TargetScheduled { target: job.id });
            }
            // Snapshot of the sample table all of this generation's
            // targets are checked against (per-target probe runs extend a
            // thread-local copy).
            let snapshot = st.samples.clone();
            // One solver session per generation: sibling targets share
            // the query cache and arena always, and — when incremental
            // solving is configured — one persistent boolean core with
            // its learned clauses.
            let session = SmtSession::for_solver(&smt);
            let mut stop = false;
            // Stage A (resume replay): while the recorded prefix still
            // covers whole targets, reconstruct each outcome from the
            // trace instead of redoing its solver work. Every
            // reconstructed run is re-executed and verified against the
            // recorded record; any inconsistency stops the stage and the
            // remaining targets are processed live (stage B), which
            // abandons the replay at the first diverging event.
            let mut start = 0;
            while start < jobs.len() && em.replay_active() && !stop {
                if em.report.runs.len() >= self.config.max_runs {
                    stop = true;
                    break;
                }
                if campaign_end.expired() {
                    em.emit(CampaignEvent::CampaignTimedOut);
                    stop = true;
                    break;
                }
                if em.fail_fast_tripped() {
                    stop = true;
                    break;
                }
                let Some(out) =
                    resume::reconstruct_outcome(self, strategy, &jobs[start], em.replay_rest())
                else {
                    break;
                };
                self.merge_outcome(&jobs[start], out, em, &mut st);
                start += 1;
            }
            let live = &jobs[start..];
            if stop {
                // fall through to session accounting, then stop
            } else if threads == 1 || live.len() <= 1 {
                for job in live {
                    if em.report.runs.len() >= self.config.max_runs {
                        stop = true;
                        break;
                    }
                    if campaign_end.expired() {
                        em.emit(CampaignEvent::CampaignTimedOut);
                        stop = true;
                        break;
                    }
                    if em.fail_fast_tripped() {
                        stop = true;
                        break;
                    }
                    let out = self.process_target(
                        strategy,
                        job,
                        &snapshot,
                        summaries.as_ref(),
                        &smt,
                        &session,
                        &validity,
                        campaign_end,
                    );
                    self.merge_outcome(job, out, em, &mut st);
                }
            } else {
                let outcomes = run_pool(threads, live, |job| {
                    self.process_target(
                        strategy,
                        job,
                        &snapshot,
                        summaries.as_ref(),
                        &smt,
                        &session,
                        &validity,
                        campaign_end,
                    )
                });
                for (job, out) in live.iter().zip(outcomes) {
                    if em.report.runs.len() >= self.config.max_runs {
                        stop = true;
                        break;
                    }
                    if campaign_end.expired() {
                        em.emit(CampaignEvent::CampaignTimedOut);
                        stop = true;
                        break;
                    }
                    if em.fail_fast_tripped() {
                        stop = true;
                        break;
                    }
                    self.merge_outcome(job, out, em, &mut st);
                }
            }
            session_queries += session.queries();
            session_clauses_reused += session.clauses_reused();
            if stop {
                break 'search;
            }
        }
        let stats = smt.cache_stats().merged(validity.cache_stats());
        em.emit(CampaignEvent::CacheStats {
            hits: stats.hits,
            misses: stats.misses,
        });
        em.emit(CampaignEvent::SolverSessionStats {
            queries: session_queries,
            intern_hits: self.arena.stats().intern_hits,
            clauses_reused: session_clauses_reused,
        });
        // Pre-solver cascade totals: the SMT solver's and validity
        // checker's cascades are distinct (the checker wraps its own
        // solver), so merge their counters like the cache stats above.
        let backend = match (smt.backend_stats(), validity.backend_stats()) {
            (Some(a), Some(b)) => Some(a.merged(b)),
            (a, b) => a.or(b),
        };
        if let Some(b) = backend {
            em.emit(CampaignEvent::BackendStats {
                backend: b.backend.to_string(),
                queries: b.queries,
                unsat_short_circuits: b.unsat_short_circuits,
                valid_short_circuits: b.valid_short_circuits,
                sat_short_circuits: b.sat_short_circuits,
            });
        }
    }

    /// Translates one executed run into events and folds its samples
    /// and children into the search state (merge thread only).
    pub(crate) fn merge_run(&self, run: WorkerRun, em: &mut Emitter<'_>, st: &mut SearchState) {
        st.samples.merge(&run.samples);
        if run.pruned_static > 0 {
            em.emit(CampaignEvent::TargetsPrunedStatic {
                count: run.pruned_static,
            });
        }
        if run.injected_fault {
            em.emit(CampaignEvent::FaultInjected {
                site: FaultSite::InterpFault,
                count: 1,
            });
        }
        match &run.record.origin {
            Origin::Probe { target } => em.emit(CampaignEvent::ProbeRun { target: *target }),
            Origin::Solved { target } | Origin::Strategy { target, .. } => {
                em.emit(CampaignEvent::TargetSolved { target: *target });
            }
            _ => {}
        }
        em.emit(CampaignEvent::RunExecuted {
            record: Box::new(run.record),
        });
        st.pending.extend(run.children);
    }

    /// Translates one target's outcome into events, in target order
    /// (merge thread only).
    fn merge_outcome(
        &self,
        job: &Job,
        out: TargetOutcome,
        em: &mut Emitter<'_>,
        st: &mut SearchState,
    ) {
        if out.solver_calls > 0 {
            em.emit(CampaignEvent::SolverQueries {
                count: out.solver_calls,
            });
        }
        if out.rejected_targets > 0 {
            em.emit(CampaignEvent::TargetsRejected {
                count: out.rejected_targets,
            });
        }
        if out.solver_errors > 0 {
            em.emit(CampaignEvent::SolverErrors {
                count: out.solver_errors,
            });
        }
        if out.budget_escalations > 0 {
            em.emit(CampaignEvent::BudgetEscalations {
                count: out.budget_escalations,
            });
        }
        for (site, count) in out.faults.per_site() {
            if count > 0 {
                em.emit(CampaignEvent::FaultInjected { site, count });
            }
        }
        if out.faulted {
            em.emit(CampaignEvent::TargetFaulted { target: job.id });
        }
        if !out.degradations.is_empty() {
            em.emit(CampaignEvent::TargetDegraded {
                target: job.id,
                rungs: out.degradations,
            });
        }
        for run in out.runs {
            self.merge_run(run, em, st);
        }
        // Block delimiter for the resume replay: announcement-only, not
        // folded, but recorded in the durable trace so a salvaged prefix
        // can be split back into whole per-target outcome blocks.
        em.emit(CampaignEvent::TargetClosed { target: job.id });
    }
}

/// Filters the pending generation through the dedup set sequentially,
/// in target order — the set is only consulted here, on the merge
/// thread, so worker scheduling cannot affect which targets survive.
fn filter_generation(st: &mut SearchState) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();
    for target in std::mem::take(&mut st.pending) {
        let Some(expected) = target.pc.expected_path(target.j) else {
            continue;
        };
        if !st.seen.insert(path_key(&expected)) {
            continue;
        }
        let Some(alt) = target.pc.alt(target.j) else {
            continue;
        };
        let (id, _) = target.pc.entries[target.j].branch.expect("branch entry");
        jobs.push(Job {
            target,
            expected,
            alt,
            id,
        });
    }
    jobs
}

/// Processes every job on a scoped worker pool and returns the outcomes
/// in job order. Workers pull jobs off an atomic cursor; each outcome
/// goes into its job's slot, so the result order is independent of
/// worker scheduling.
fn run_pool<F>(threads: usize, jobs: &[Job], process: F) -> Vec<TargetOutcome>
where
    F: Fn(&Job) -> TargetOutcome + Sync,
{
    let slots: Vec<OnceLock<TargetOutcome>> = jobs.iter().map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else {
                    break;
                };
                let out = process(job);
                slots[i]
                    .set(out)
                    .unwrap_or_else(|_| unreachable!("each slot has exactly one owner"));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker populated slot"))
        .collect()
}
