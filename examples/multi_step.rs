//! Multi-step test generation (the paper's Example 7): watch the engine
//! run an *intermediate probe* to learn `hash(10)` before it can finish
//! interpreting the strategy `y := 10, x := hash(10)`.
//!
//! ```text
//! cargo run --release --example multi_step
//! ```

use higher_order_testgen::core::{Driver, DriverConfig, Origin, Technique};
use hotg_lang::corpus;

fn main() {
    let (program, natives) = corpus::foo();
    println!("program foo (paper §3.2):");
    println!("  if (x == hash(y)) {{ if (y == 10) {{ error(1); }} }}\n");

    // The paper's starting point: x = 33, y = 42 with hash(42) = 567.
    let config = DriverConfig::with_initial(vec![33, 42]);
    let driver = Driver::new(&program, &natives, config);
    let report = driver.run(Technique::HigherOrder);

    for (i, run) in report.runs.iter().enumerate() {
        let kind = match &run.origin {
            Origin::Initial => "initial".to_string(),
            Origin::Seed => "seed".to_string(),
            Origin::Random => "random".to_string(),
            Origin::Solved { target } => format!("solved flip of {target}"),
            Origin::Strategy { target, strategy } => {
                format!("strategy for {target}: {strategy}")
            }
            Origin::Probe { target } => format!("probe for {target}"),
            Origin::Degraded { target, level } => {
                format!("degraded {target} ({})", level.label())
            }
        };
        println!(
            "run {i}: (x={}, y={}) -> {:?}   [{kind}]",
            run.inputs[0], run.inputs[1], run.outcome
        );
    }

    println!();
    println!("probes executed: {}", report.probes);
    println!("errors found:    {:?}", report.errors);
    assert!(report.found_error(1));
    assert!(
        report.probes >= 1,
        "Example 7 requires an intermediate test"
    );
}
