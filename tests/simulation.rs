//! Theorem 4 (Simulation Theorem), tested extensionally: on randomly
//! generated programs, whenever the sound-concretization search covers a
//! branch direction or finds an error, the higher-order search does too.
//!
//! The theorem states that if `ALT(pc^SC)` is satisfiable then
//! `POST(ALT(pc^UF))` is valid — i.e. higher-order test generation can
//! always follow where sound concretization leads (§5.2). Campaign-level
//! domination is the observable consequence.

mod common;

use common::{arb_program, test_natives};
use hotg_core::{Driver, DriverConfig, Technique};
use hotg_prop::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn higher_order_dominates_sound_concretization(
        program in arb_program(),
        seed in hotg_prop::collection::vec(-10i64..=10, 3),
    ) {
        let natives = test_natives();
        let config = DriverConfig {
            max_runs: 12,
            ..DriverConfig::with_initial(seed)
        };
        let sound = Driver::new(&program, &natives, config.clone())
            .run(Technique::DartSound);
        let hotg = Driver::new(&program, &natives, config)
            .run(Technique::HigherOrder);

        prop_assert!(
            hotg.covered_directions() >= sound.covered_directions(),
            "HOTG covered {} < sound {}",
            hotg.covered_directions(),
            sound.covered_directions()
        );
        for code in sound.errors.keys() {
            prop_assert!(
                hotg.found_error(*code),
                "sound found error {code}, HOTG did not"
            );
        }
        // Both are sound: no divergences, ever (Theorems 2–3).
        prop_assert_eq!(sound.divergences, 0);
        prop_assert_eq!(hotg.divergences, 0);
    }
}
