//! Models: assignments of values to symbolic variables and finite
//! interpretations of uninterpreted functions.
//!
//! A satisfying assignment from the solver, the "counter-interpretation"
//! that witnesses invalidity (Section 4.2 of the paper: "consider the
//! function h such that h(x) = 0 for all x"), and the recorded sample table
//! all evaluate terms through this type.

use crate::sort::Value;
use crate::sym::{FuncSym, Signature, Var};
use std::collections::BTreeMap;
use std::fmt;

/// A finite interpretation of one uninterpreted function: an explicit
/// argument-tuple table plus a default value for unlisted tuples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncInterp {
    table: BTreeMap<Vec<i64>, i64>,
    default: Option<i64>,
}

impl FuncInterp {
    /// Creates an empty interpretation with no default.
    pub fn new() -> FuncInterp {
        FuncInterp::default()
    }

    /// Creates an interpretation that maps everything to `default`.
    pub fn constant(default: i64) -> FuncInterp {
        FuncInterp {
            table: BTreeMap::new(),
            default: Some(default),
        }
    }

    /// Sets the value for one argument tuple, returning any previous value.
    pub fn insert(&mut self, args: Vec<i64>, value: i64) -> Option<i64> {
        self.table.insert(args, value)
    }

    /// Sets the default value for unlisted tuples.
    pub fn set_default(&mut self, value: i64) {
        self.default = Some(value);
    }

    /// Applies the interpretation to an argument tuple.
    pub fn apply(&self, args: &[i64]) -> Option<i64> {
        self.table.get(args).copied().or(self.default)
    }

    /// Whether this exact tuple has an explicit entry.
    pub fn contains(&self, args: &[i64]) -> bool {
        self.table.contains_key(args)
    }

    /// Iterates over explicit `(args, value)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (&Vec<i64>, i64)> {
        self.table.iter().map(|(k, v)| (k, *v))
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether there are no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// A model: variable assignment plus uninterpreted function
/// interpretations.
///
/// # Examples
///
/// ```
/// use hotg_logic::{Model, Signature, Sort, Term, Value};
///
/// let mut sig = Signature::new();
/// let y = sig.declare_var("y", Sort::Int);
/// let h = sig.declare_func("hash", 1);
///
/// let mut m = Model::new();
/// m.set_var(y, Value::Int(42));
/// m.set_func_entry(h, vec![42], 567);
/// let t = Term::app(h, vec![Term::var(y)]);
/// assert_eq!(t.eval(&m), Some(567));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    vars: BTreeMap<Var, Value>,
    funcs: BTreeMap<FuncSym, FuncInterp>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Model {
        Model::default()
    }

    /// Assigns a variable.
    pub fn set_var(&mut self, v: Var, value: Value) {
        self.vars.insert(v, value);
    }

    /// The value of a variable, if assigned.
    pub fn var(&self, v: Var) -> Option<Value> {
        self.vars.get(&v).copied()
    }

    /// Inserts one explicit entry into a function's interpretation.
    pub fn set_func_entry(&mut self, f: FuncSym, args: Vec<i64>, value: i64) {
        self.funcs.entry(f).or_default().insert(args, value);
    }

    /// Sets the default value of a function's interpretation.
    pub fn set_func_default(&mut self, f: FuncSym, value: i64) {
        self.funcs.entry(f).or_default().set_default(value);
    }

    /// Replaces a function's whole interpretation.
    pub fn set_func(&mut self, f: FuncSym, interp: FuncInterp) {
        self.funcs.insert(f, interp);
    }

    /// The interpretation of a function, if any.
    pub fn func(&self, f: FuncSym) -> Option<&FuncInterp> {
        self.funcs.get(&f)
    }

    /// Applies a function to concrete arguments using its interpretation.
    pub fn apply(&self, f: FuncSym, args: &[i64]) -> Option<i64> {
        self.funcs.get(&f)?.apply(args)
    }

    /// Iterates over assigned variables.
    pub fn vars(&self) -> impl Iterator<Item = (Var, Value)> + '_ {
        self.vars.iter().map(|(v, x)| (*v, *x))
    }

    /// Iterates over interpreted functions.
    pub fn funcs(&self) -> impl Iterator<Item = (FuncSym, &FuncInterp)> {
        self.funcs.iter().map(|(f, i)| (*f, i))
    }

    /// Number of assigned variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Merges another model into this one (other's entries win on clash).
    pub fn extend(&mut self, other: &Model) {
        for (v, x) in other.vars() {
            self.vars.insert(v, x);
        }
        for (f, interp) in other.funcs() {
            let slot = self.funcs.entry(f).or_default();
            for (args, val) in interp.entries() {
                slot.insert(args.clone(), val);
            }
            if let Some(d) = interp.default {
                slot.set_default(d);
            }
        }
    }

    /// Renders the model with names from `sig`.
    pub fn display<'a>(&'a self, sig: &'a Signature) -> ModelDisplay<'a> {
        ModelDisplay { model: self, sig }
    }
}

/// Helper returned by [`Model::display`].
pub struct ModelDisplay<'a> {
    model: &'a Model,
    sig: &'a Signature,
}

impl fmt::Display for ModelDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, x) in self.model.vars() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{} = {}", self.sig.var_name(v), x)?;
            first = false;
        }
        for (fs, interp) in self.model.funcs() {
            for (args, val) in interp.entries() {
                if !first {
                    f.write_str(", ")?;
                }
                write!(f, "{}(", self.sig.func_name(fs))?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") = {val}")?;
                first = false;
            }
            if let Some(d) = interp.default {
                if !first {
                    f.write_str(", ")?;
                }
                write!(f, "{}(_) = {d}", self.sig.func_name(fs))?;
                first = false;
            }
        }
        if first {
            f.write_str("<empty model>")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn func_interp_basics() {
        let mut fi = FuncInterp::new();
        assert!(fi.is_empty());
        assert_eq!(fi.apply(&[1]), None);
        fi.insert(vec![1], 10);
        assert_eq!(fi.apply(&[1]), Some(10));
        assert_eq!(fi.apply(&[2]), None);
        fi.set_default(0);
        assert_eq!(fi.apply(&[2]), Some(0));
        assert!(fi.contains(&[1]));
        assert!(!fi.contains(&[2]));
        assert_eq!(fi.len(), 1);
    }

    #[test]
    fn constant_interp() {
        let fi = FuncInterp::constant(7);
        assert_eq!(fi.apply(&[99, 100]), Some(7));
        assert!(fi.is_empty());
    }

    #[test]
    fn model_roundtrip() {
        let mut sig = Signature::new();
        let x = sig.declare_var("x", Sort::Int);
        let h = sig.declare_func("h", 1);
        let mut m = Model::new();
        m.set_var(x, Value::Int(3));
        m.set_func_entry(h, vec![3], 30);
        assert_eq!(m.var(x), Some(Value::Int(3)));
        assert_eq!(m.apply(h, &[3]), Some(30));
        assert_eq!(m.apply(h, &[4]), None);
        assert_eq!(m.var_count(), 1);
    }

    #[test]
    fn model_extend() {
        let mut sig = Signature::new();
        let x = sig.declare_var("x", Sort::Int);
        let y = sig.declare_var("y", Sort::Int);
        let h = sig.declare_func("h", 1);
        let mut a = Model::new();
        a.set_var(x, Value::Int(1));
        a.set_func_entry(h, vec![1], 10);
        let mut b = Model::new();
        b.set_var(x, Value::Int(2));
        b.set_var(y, Value::Int(5));
        b.set_func_entry(h, vec![2], 20);
        a.extend(&b);
        assert_eq!(a.var(x), Some(Value::Int(2)));
        assert_eq!(a.var(y), Some(Value::Int(5)));
        assert_eq!(a.apply(h, &[1]), Some(10));
        assert_eq!(a.apply(h, &[2]), Some(20));
    }

    #[test]
    fn model_display() {
        let mut sig = Signature::new();
        let x = sig.declare_var("x", Sort::Int);
        let h = sig.declare_func("h", 1);
        let mut m = Model::new();
        assert_eq!(m.display(&sig).to_string(), "<empty model>");
        m.set_var(x, Value::Int(3));
        m.set_func_entry(h, vec![42], 567);
        let s = m.display(&sig).to_string();
        assert!(s.contains("x = 3"));
        assert!(s.contains("h(42) = 567"));
    }
}
