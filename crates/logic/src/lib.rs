//! Logic layer for higher-order test generation: sorts, terms, atoms,
//! formulas, models, exact rationals, and linear-form extraction.
//!
//! This crate is the shared vocabulary of the workspace. The concolic
//! engine (`hotg-concolic`) builds path constraints out of [`Formula`]s
//! over [`Term`]s; the solver (`hotg-solver`) decides them; the
//! higher-order driver (`hotg-core`) post-processes them into the
//! validity queries of the paper:
//!
//! ```text
//! POST(pc) = ∃X : A ⇒ pc
//! ```
//!
//! where `A` is a conjunction of recorded uninterpreted-function samples
//! and the function symbols are implicitly universally quantified
//! (Godefroid, *Higher-Order Test Generation*, PLDI 2011, §4.2).
//!
//! # Example
//!
//! Building the path constraint `x = hash(y)` from the paper's `obscure`
//! example and evaluating it under a model:
//!
//! ```
//! use hotg_logic::{Atom, Formula, Model, Signature, Sort, Term, Value};
//!
//! let mut sig = Signature::new();
//! let x = sig.declare_var("x", Sort::Int);
//! let y = sig.declare_var("y", Sort::Int);
//! let hash = sig.declare_func("hash", 1);
//!
//! let pc = Formula::atom(Atom::eq(
//!     Term::var(x),
//!     Term::app(hash, vec![Term::var(y)]),
//! ));
//!
//! let mut m = Model::new();
//! m.set_var(x, Value::Int(567));
//! m.set_var(y, Value::Int(42));
//! m.set_func_entry(hash, vec![42], 567);
//! assert_eq!(pc.eval(&m), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod atom;
mod domain;
mod formula;
mod hash;
mod linear;
mod model;
mod rat;
mod sort;
mod sym;
mod term;

pub use arena::{ArenaStats, InternedFormula, InternedTerm, LogicArena};
pub use atom::{Atom, AtomDisplay, Rel};
pub use domain::{Constancy, Interval};
pub use formula::{Formula, FormulaDisplay};
pub use hash::StableHasher;
pub use linear::{LinConstraint, LinExpr, LinKey, NonLinearError};
pub use model::{FuncInterp, Model, ModelDisplay};
pub use rat::Rat;
pub use sort::{Sort, Value};
pub use sym::{FuncDecl, FuncSym, Signature, Var, VarDecl};
pub use term::{fold_concrete, OpKind, Term, TermDisplay};
