//! The strategy-pluggable campaign engine.
//!
//! The engine owns everything a test-generation campaign shares across
//! techniques — the generational scheduler ([`scheduler`]), the
//! degradation ladder ([`ladder`]), chaos injection, panic isolation,
//! escalated-budget retries, and the merge of worker results — while
//! the technique-specific behavior (path-constraint production, flip
//! query construction, probe/multi-step handling) lives behind the
//! [`Strategy`](crate::strategy::Strategy) trait.
//!
//! Instead of mutating [`Report`] counters in place, the engine emits a
//! [`CampaignEvent`] for every observable fact, in deterministic merge
//! order, and builds its own report by folding that stream (see
//! [`crate::events`]). Extra sinks — the optional JSONL trace and the
//! caller's [`EventSink`] — observe the very same stream.
//!
//! # Parallel generational search
//!
//! Each generation is processed in two phases. First, its targets are
//! filtered through the dedup set in deterministic order; then every
//! surviving target is processed as a *pure function* of the target and a
//! snapshot of the sample table taken at generation start — solver
//! queries, strategy interpretation, and probe executions all run against
//! thread-local state. A `std::thread::scope` worker pool (size
//! [`DriverConfig::threads`]) pulls targets off an atomic cursor; the
//! per-target outcomes are merged back into the report, the sample table,
//! and the next generation's worklist **in target order** on the calling
//! thread. Because the per-target computation never observes shared
//! mutable state and the merge order is fixed, the resulting [`Report`]
//! is identical for every thread count (only the solver-cache hit/miss
//! counters can differ — racing workers may each miss a key one of them
//! is about to fill, but the cached values are pure functions of the key).

pub(crate) mod ladder;
pub(crate) mod merge;
pub(crate) mod outcome;
pub(crate) mod resume;
pub(crate) mod scheduler;
pub(crate) mod shard;
pub(crate) mod state;

use crate::chaos::{chaos_key, injected_fault, FaultCounters, FaultSite};
use crate::config::DriverConfig;
use crate::events::{CampaignEvent, EventSink, JsonlSink};
use crate::report::{Origin, Report, RunRecord};
use crate::strategy::{Strategy, TargetCx};
use crate::trace::{program_digest, TraceConfig, TraceErrorPolicy, TraceHeader, TraceWriter};
use hotg_analysis::AnalysisResult;
use hotg_concolic::{
    diverged, execute_compiled_profiled, execute_profiled, ConcolicContext, ConcolicRun,
    ExecProfile,
};
use hotg_lang::{BranchId, CompiledProgram, InputVector, NativeRegistry, Program};
use hotg_logic::LogicArena;
use hotg_logic::{Formula, Var};
use hotg_solver::{
    Deadline, Samples, SmtResult, SmtSession, SmtSolver, ValidityChecker, ValidityOutcome,
};
use outcome::{path_key, scale_budget, Target, TargetOutcome, WorkerRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared campaign engine: borrows the program, the symbolic
/// context, the static-analysis oracle, and the configuration from the
/// [`Driver`](crate::Driver), and runs one campaign per call.
pub(crate) struct Engine<'a> {
    pub(crate) program: &'a Program,
    pub(crate) natives: &'a NativeRegistry,
    pub(crate) ctx: &'a ConcolicContext,
    pub(crate) analysis: &'a AnalysisResult,
    pub(crate) config: &'a DriverConfig,
    /// The campaign's term/formula arena (owned by the driver, never
    /// global): all solver instances of this campaign intern through it.
    pub(crate) arena: &'a Arc<LogicArena>,
    /// The driver's once-compiled bytecode; `None` runs the campaign on
    /// the reference tree-walkers (identical reports, lower throughput).
    pub(crate) compiled: Option<&'a CompiledProgram>,
    /// Why compilation failed when bytecode execution was requested but
    /// `compiled` is `None`. Announced as
    /// [`CampaignEvent::BytecodeFallback`] right after campaign start so
    /// the tree-walker fallback is never silent.
    pub(crate) compile_error: Option<&'a str>,
    /// Execution-layer telemetry for this campaign, summed across worker
    /// threads and announced once as [`CampaignEvent::ExecStats`].
    pub(crate) exec: ExecCounters,
}

/// Atomic execution-telemetry counters: workers bump them from run
/// helpers ([`Engine::run_concrete`], [`Engine::execute_concolic`]); the
/// totals are announcement-only (never folded into the report), so the
/// relaxed ordering is fine.
#[derive(Debug, Default)]
pub(crate) struct ExecCounters {
    /// Bytecode instructions retired across all VM runs.
    pub(crate) instructions: AtomicU64,
    /// Runs executed on the bytecode VMs (concrete or concolic).
    pub(crate) vm_runs: AtomicU64,
    /// Runs executed by the tree-walkers (fallback or `bytecode: false`).
    pub(crate) tree_runs: AtomicU64,
}

/// The salvaged event prefix a resumed campaign replays: the engine's
/// deterministic re-derivation of the campaign is matched against the
/// recorded events one by one.
pub(crate) struct ResumeData {
    /// The salvaged events, in recorded order.
    pub(crate) events: Vec<CampaignEvent>,
    /// Byte offset just past each event's frame in the trace file.
    pub(crate) ends: Vec<u64>,
    /// Byte offset just past the header frame.
    pub(crate) header_end: u64,
}

/// State of the durable trace file behind the [`Emitter`].
enum Durable {
    /// No durable trace configured (or the writer was disabled by an
    /// I/O error under the drop-and-count policy).
    Off,
    /// Live appender: every emitted event becomes one durable frame.
    Writing(TraceWriter),
    /// Resume replay in flight: the matched prefix is already on disk,
    /// so nothing is written. On replay abandonment the file is
    /// truncated at the last consumed frame boundary and this becomes
    /// `Writing`.
    Pending {
        config: TraceConfig,
        ends: Vec<u64>,
        header_end: u64,
    },
}

/// Replay cursor over the salvaged prefix of a recorded campaign.
struct Replay {
    events: Vec<CampaignEvent>,
    pos: usize,
}

/// The engine's event funnel: every event is folded into the report
/// under construction, then written to the durable trace (unless a
/// resume replay says it is already on disk) and forwarded to the
/// optional JSONL trace and the caller's sink. Emission happens on the
/// merge thread only.
///
/// Sink error policy (drop-and-count): the first `Err` from any sink
/// permanently disables that sink, is tallied into `sink_errors`, and
/// the campaign continues. The durable trace can opt into
/// [`TraceErrorPolicy::FailFast`] instead, which additionally trips a
/// flag the scheduler checks at merge boundaries.
pub(crate) struct Emitter<'s> {
    pub(crate) report: Report,
    trace: Option<JsonlSink>,
    external: &'s mut dyn EventSink,
    external_dead: bool,
    durable: Durable,
    replay: Option<Replay>,
    /// Chaos plan handed to writers opened mid-campaign (resume).
    plan: Option<crate::chaos::FaultPlan>,
    policy: TraceErrorPolicy,
    /// Sink I/O errors absorbed so far (all sinks).
    sink_errors: usize,
    fail_fast: bool,
    /// Trace-fault counters absorbed from writers that were disabled.
    absorbed_short_writes: usize,
    absorbed_fsync_fails: usize,
    /// Recorded events consumed by the replay before it ended.
    replayed: usize,
}

impl Emitter<'_> {
    /// Events the `EveryGeneration` fsync policy makes durable on.
    fn sync_point(event: &CampaignEvent) -> bool {
        matches!(
            event,
            CampaignEvent::GenerationStarted { .. } | CampaignEvent::CampaignFinished
        )
    }

    pub(crate) fn emit(&mut self, event: CampaignEvent) {
        self.report.fold(&event);
        if let Some(replay) = &mut self.replay {
            if replay.pos < replay.events.len() && replay.events[replay.pos] == event {
                // The engine re-derived exactly what the trace recorded:
                // consume it. The frame is already on disk, so only the
                // non-durable sinks observe it.
                replay.pos += 1;
                self.forward(&event);
                return;
            }
            // Divergence from the recorded prefix (normally the recorded
            // tail of a crashed campaign, e.g. stale end-of-run stats):
            // truncate the trace at the last consumed frame and go live.
            self.abandon_replay();
        }
        self.write_durable(&event);
        self.forward(&event);
    }

    /// Forwards one event to the non-durable sinks, absorbing errors
    /// under the drop-and-count policy.
    fn forward(&mut self, event: &CampaignEvent) {
        if let Some(trace) = &mut self.trace {
            if trace.emit(event).is_err() {
                // JsonlSink disabled itself; drop it and count.
                self.sink_errors += 1;
                self.trace = None;
            }
        }
        if !self.external_dead && self.external.emit(event).is_err() {
            self.sink_errors += 1;
            self.external_dead = true;
        }
    }

    fn write_durable(&mut self, event: &CampaignEvent) {
        let Durable::Writing(w) = &mut self.durable else {
            return;
        };
        if w.write_event(event, Emitter::sync_point(event)).is_err() {
            self.sink_errors += 1;
            if self.policy == TraceErrorPolicy::FailFast {
                self.fail_fast = true;
            }
            self.kill_writer();
        }
    }

    /// Disables the durable writer, keeping its injected-fault counters.
    fn kill_writer(&mut self) {
        if let Durable::Writing(w) = std::mem::replace(&mut self.durable, Durable::Off) {
            self.absorbed_short_writes += w.injected_short_writes();
            self.absorbed_fsync_fails += w.injected_fsync_fails();
        }
    }

    /// Ends the replay: truncates the trace file at the boundary of the
    /// last consumed frame and reopens it for live appending.
    fn abandon_replay(&mut self) {
        let Some(replay) = self.replay.take() else {
            return;
        };
        self.replayed = replay.pos;
        let Durable::Pending {
            config,
            ends,
            header_end,
        } = std::mem::replace(&mut self.durable, Durable::Off)
        else {
            return;
        };
        let end = if replay.pos == 0 {
            header_end
        } else {
            ends[replay.pos - 1]
        };
        match TraceWriter::append(
            &config.path,
            end,
            replay.pos as u64,
            config.fsync,
            self.plan.clone(),
            config.chaos_kill_at_event,
        ) {
            Ok(w) => self.durable = Durable::Writing(w),
            Err(e) => {
                eprintln!(
                    "hotg: cannot reopen durable trace {}: {e}",
                    config.path.display()
                );
                self.sink_errors += 1;
                if self.policy == TraceErrorPolicy::FailFast {
                    self.fail_fast = true;
                }
            }
        }
    }

    /// Whether recorded events remain to be consumed by the replay.
    pub(crate) fn replay_active(&self) -> bool {
        self.replay.as_ref().is_some_and(|r| r.pos < r.events.len())
    }

    /// The not-yet-consumed recorded events (empty when no replay).
    pub(crate) fn replay_rest(&self) -> &[CampaignEvent] {
        match &self.replay {
            Some(r) => &r.events[r.pos..],
            None => &[],
        }
    }

    /// Whether a trace I/O error under [`TraceErrorPolicy::FailFast`]
    /// asked the campaign to stop at the next merge boundary.
    pub(crate) fn fail_fast_tripped(&self) -> bool {
        self.fail_fast
    }

    /// Total injected trace faults so far (disabled + live writers).
    fn trace_fault_counts(&self) -> (usize, usize) {
        let (mut sw, mut ff) = (self.absorbed_short_writes, self.absorbed_fsync_fails);
        if let Durable::Writing(w) = &self.durable {
            sw += w.injected_short_writes();
            ff += w.injected_fsync_fails();
        }
        (sw, ff)
    }

    /// Closes the durable trace. Best-effort: the report is final by
    /// now (it is folded per event), so close-time errors are reported
    /// on stderr but never mutate the report.
    fn finish(&mut self) {
        if let Some(replay) = self.replay.take() {
            // The whole campaign matched the recorded prefix (complete
            // trace): the file is already exactly right, leave it alone.
            self.replayed = replay.pos;
            return;
        }
        if let Durable::Writing(w) = &mut self.durable {
            if let Err(e) = w.finish() {
                eprintln!("hotg: durable trace close failed: {e}");
            }
        }
    }

    /// Closes a finished shard emitter and folds its I/O accounting into
    /// this (canonical) emitter: absorbed sink errors, injected
    /// trace-fault counters, replay consumption, and a tripped fail-fast
    /// flag all surface through the canonical campaign tail. Digest-safe
    /// by construction — none of these counters is a campaign result.
    pub(crate) fn absorb_shard(&mut self, mut shard: Emitter<'_>) {
        shard.finish();
        let (short_writes, fsync_fails) = shard.trace_fault_counts();
        self.absorbed_short_writes += short_writes;
        self.absorbed_fsync_fails += fsync_fails;
        self.sink_errors += shard.sink_errors;
        self.replayed += shard.replayed;
        if shard.fail_fast {
            self.fail_fast = true;
        }
    }
}

impl<'a> Engine<'a> {
    /// Runs one campaign under `strategy`, streaming events into the
    /// report fold, the configured traces, and `external`.
    pub(crate) fn run(&self, strategy: &dyn Strategy, external: &mut dyn EventSink) -> Report {
        self.run_resumable(strategy, external, None, Vec::new()).0
    }

    /// Runs one campaign, optionally replaying a salvaged trace prefix
    /// (resume). A sharded campaign (`DriverConfig::shards` > 1) resumes
    /// from its per-shard traces instead: `shard_resume[i]` carries
    /// shard `i`'s salvaged prefix (`None` for a shard whose trace was
    /// lost entirely — that shard simply re-runs live). Returns the
    /// report plus the number of recorded events the replays consumed
    /// (summed across shards for a sharded campaign).
    pub(crate) fn run_resumable(
        &self,
        strategy: &dyn Strategy,
        external: &mut dyn EventSink,
        resume: Option<ResumeData>,
        shard_resume: Vec<Option<ResumeData>>,
    ) -> (Report, usize) {
        let trace = self.config.event_trace.as_ref().and_then(|path| {
            JsonlSink::create(path)
                .map_err(|e| {
                    eprintln!("hotg: cannot open event trace {}: {e}", path.display());
                })
                .ok()
        });
        let policy = self
            .config
            .trace
            .as_ref()
            .map(|t| t.on_error)
            .unwrap_or_default();
        let mut startup_errors = 0;
        let (durable, replay) = match resume {
            Some(rd) => {
                let config = self
                    .config
                    .trace
                    .clone()
                    .expect("resume requires a configured durable trace");
                (
                    Durable::Pending {
                        config,
                        ends: rd.ends,
                        header_end: rd.header_end,
                    },
                    Some(Replay {
                        events: rd.events,
                        pos: 0,
                    }),
                )
            }
            None => {
                let durable = match &self.config.trace {
                    Some(tc) => {
                        let header = TraceHeader {
                            program: self.program.name.clone(),
                            program_digest: program_digest(self.program),
                            config_digest: self.config.resume_digest(),
                            technique: strategy.technique(),
                            seed: self.config.seed,
                            fsync: tc.fsync,
                        };
                        // When the kill-switch chaos names a shard, it
                        // arms on that shard's writer only; the
                        // canonical trace keeps it when no shard is
                        // named.
                        let kill_at = if tc.chaos_kill_shard.is_some() {
                            None
                        } else {
                            tc.chaos_kill_at_event
                        };
                        match TraceWriter::create(
                            &tc.path,
                            &header,
                            tc.fsync,
                            self.config.fault_plan.clone(),
                            kill_at,
                        ) {
                            Ok(w) => Durable::Writing(w),
                            Err(e) => {
                                eprintln!(
                                    "hotg: cannot create durable trace {}: {e}",
                                    tc.path.display()
                                );
                                startup_errors = 1;
                                Durable::Off
                            }
                        }
                    }
                    None => Durable::Off,
                };
                (durable, None)
            }
        };
        let mut em = Emitter {
            report: Report::empty(),
            trace,
            external,
            external_dead: false,
            durable,
            replay,
            plan: self.config.fault_plan.clone(),
            policy,
            sink_errors: startup_errors,
            fail_fast: startup_errors > 0 && policy == TraceErrorPolicy::FailFast,
            absorbed_short_writes: 0,
            absorbed_fsync_fails: 0,
            replayed: 0,
        };
        em.emit(CampaignEvent::CampaignStarted {
            technique: strategy.technique(),
            program: self.program.name.clone(),
            branch_sites: self.program.branch_count,
        });
        if let Some(reason) = self.compile_error {
            em.emit(CampaignEvent::BytecodeFallback {
                reason: reason.to_string(),
            });
        }
        if strategy.is_directed() {
            if self.config.shards > 1 {
                self.directed_sharded(strategy, &mut em, shard_resume);
            } else {
                self.directed(strategy, &mut em);
            }
        } else {
            // The random baseline has no branch-flip targets to
            // partition; `shards` is a no-op for it.
            self.random_campaign(&mut em);
        }
        // Trace-fault and sink-error accounting, announced before the
        // closing stats so `[ExecStats, CampaignFinished]` stays the
        // stream's invariant tail. Snapshot counts: a failure while
        // writing these very frames is absorbed best-effort (stderr at
        // close) — the report is never mutated after its fold.
        let (short_writes, fsync_fails) = em.trace_fault_counts();
        if short_writes > 0 {
            em.emit(CampaignEvent::FaultInjected {
                site: FaultSite::TraceShortWrite,
                count: short_writes,
            });
        }
        if fsync_fails > 0 {
            em.emit(CampaignEvent::FaultInjected {
                site: FaultSite::TraceFsyncFail,
                count: fsync_fails,
            });
        }
        if em.sink_errors > 0 {
            em.emit(CampaignEvent::SinkErrors {
                count: em.sink_errors,
            });
        }
        em.emit(CampaignEvent::ExecStats {
            instructions: self.exec.instructions.load(Ordering::Relaxed),
            compiled_blocks: self.compiled.map_or(0, |cp| cp.blocks.len()),
            vm_runs: self.exec.vm_runs.load(Ordering::Relaxed),
            tree_runs: self.exec.tree_runs.load(Ordering::Relaxed),
        });
        em.emit(CampaignEvent::CampaignFinished);
        em.finish();
        (em.report, em.replayed)
    }

    /// One concrete run: bytecode VM when a compiled program is
    /// available, reference tree-walker otherwise. Identical `(Outcome,
    /// Trace)` either way — only the telemetry counters differ.
    pub(crate) fn run_concrete(
        &self,
        inputs: &InputVector,
    ) -> (hotg_lang::Outcome, hotg_lang::Trace) {
        match self.compiled {
            Some(cp) => {
                let (outcome, trace, retired) =
                    hotg_lang::run_compiled_counted(cp, inputs, self.config.fuel);
                self.exec.instructions.fetch_add(retired, Ordering::Relaxed);
                self.exec.vm_runs.fetch_add(1, Ordering::Relaxed);
                (outcome, trace)
            }
            None => {
                self.exec.tree_runs.fetch_add(1, Ordering::Relaxed);
                hotg_lang::run(self.program, self.natives, inputs, self.config.fuel)
            }
        }
    }

    /// One concolic run: shadow VM when a compiled program is available,
    /// reference tree-walker otherwise. Both drive the same symbolic
    /// core, so the returned [`ConcolicRun`] is bit-identical either way
    /// (the `instructions` field is telemetry, not behaviour).
    pub(crate) fn execute_concolic(
        &self,
        inputs: &InputVector,
        profile: ExecProfile,
    ) -> ConcolicRun {
        match self.compiled {
            Some(cp) => {
                let run =
                    execute_compiled_profiled(self.ctx, cp, inputs, self.config.fuel, profile);
                self.exec
                    .instructions
                    .fetch_add(run.instructions, Ordering::Relaxed);
                self.exec.vm_runs.fetch_add(1, Ordering::Relaxed);
                run
            }
            None => {
                self.exec.tree_runs.fetch_add(1, Ordering::Relaxed);
                execute_profiled(
                    self.ctx,
                    self.program,
                    self.natives,
                    inputs,
                    self.config.fuel,
                    profile,
                )
            }
        }
    }

    /// The campaign-wide wall-clock cutoff, fixed at campaign start.
    pub(crate) fn campaign_end(&self) -> Deadline {
        match self.config.campaign_deadline {
            Some(d) => Deadline::after(d),
            None => Deadline::NONE,
        }
    }

    fn random_inputs(&self, rng: &mut StdRng) -> Vec<i64> {
        let (lo, hi) = self.config.random_range;
        (0..self.program.input_width())
            .map(|_| rng.gen_range(lo..=hi))
            .collect()
    }

    pub(crate) fn initial_inputs(&self, rng: &mut StdRng) -> Vec<i64> {
        self.config
            .initial_inputs
            .clone()
            .unwrap_or_else(|| self.random_inputs(rng))
    }

    /// Blackbox random testing baseline (the only non-directed
    /// strategy: no symbolic evaluation, no targets, no solver).
    fn random_campaign(&self, em: &mut Emitter<'_>) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let campaign_end = self.campaign_end();
        for i in 0..self.config.max_runs {
            if em.fail_fast_tripped() {
                break;
            }
            if campaign_end.expired() {
                em.emit(CampaignEvent::CampaignTimedOut);
                break;
            }
            let inputs = if i == 0 {
                self.initial_inputs(&mut rng)
            } else {
                self.random_inputs(&mut rng)
            };
            let (outcome, trace) = self.run_concrete(&InputVector::new(inputs.clone()));
            let outcome = if self.chaos_interp_fault(&inputs) {
                em.emit(CampaignEvent::FaultInjected {
                    site: FaultSite::InterpFault,
                    count: 1,
                });
                hotg_lang::Outcome::RuntimeFault(injected_fault())
            } else {
                outcome
            };
            let record = RunRecord {
                inputs,
                outcome,
                origin: if i == 0 {
                    Origin::Initial
                } else {
                    Origin::Random
                },
                diverged: None,
                path: trace.branches.clone(),
            };
            em.emit(CampaignEvent::RunExecuted {
                record: Box::new(record),
            });
        }
    }

    /// Executes one concolic run under `profile` and expands its
    /// branch-flip targets. Pure with respect to the campaign state:
    /// safe to call from worker threads; the result is folded in by
    /// [`Engine::merge_run`].
    pub(crate) fn execute_run(
        &self,
        inputs: Vec<i64>,
        origin: Origin,
        expected: Option<&[(BranchId, bool)]>,
        profile: ExecProfile,
    ) -> WorkerRun {
        let run = self.execute_concolic(&InputVector::new(inputs.clone()), profile);
        // Chaos: replace the outcome with a synthetic interpreter fault.
        // The divergence flag is cleared (an injected fault is not a
        // soundness verdict on the technique) and the run's branch-flip
        // targets are dropped, as a genuinely faulting run would have
        // stopped before producing them.
        let injected = self.chaos_interp_fault(&inputs);
        let (outcome, div) = if injected {
            (hotg_lang::Outcome::RuntimeFault(injected_fault()), None)
        } else {
            (
                run.outcome.clone(),
                expected.map(|e| diverged(e, &run.trace.branches)),
            )
        };
        let record = RunRecord {
            inputs: inputs.clone(),
            outcome,
            origin,
            diverged: div,
            path: run.trace.branches.clone(),
        };
        let mut children = Vec::new();
        let mut pruned_static = 0;
        let expand: Vec<usize> = if injected {
            Vec::new()
        } else {
            run.pc.branch_indices()
        };
        for j in expand {
            // A constraint that folded to `true` has no input dependence:
            // its negation is trivially infeasible, so it is not a target.
            if run.pc.entries[j].constraint == Formula::True {
                continue;
            }
            // Static oracle: if the analysis proves the flipped direction
            // can never execute (constant branch condition), skip the
            // target without spending a solver/validity query on it.
            if self.config.static_pruning {
                let (id, taken) = run.pc.entries[j].branch.expect("branch entry");
                if self.analysis.flip_infeasible(id, !taken) {
                    pruned_static += 1;
                    continue;
                }
            }
            children.push(Target {
                parent_inputs: inputs.clone(),
                pc: run.pc.clone(),
                j,
                parent_samples: run.samples.clone(),
            });
        }
        WorkerRun {
            record,
            samples: run.samples,
            children,
            pruned_static,
            injected_fault: injected,
        }
    }

    /// Chaos: should this run's outcome become an injected fault?
    fn chaos_interp_fault(&self, inputs: &[i64]) -> bool {
        self.config
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.roll(FaultSite::InterpFault, chaos_key(inputs)))
    }

    /// Chaos: decides whether the solver/validity query identified by
    /// `key` is forced to fail. An injected error wins over an injected
    /// `Unknown` when both fire.
    pub(crate) fn chaos_solver(
        &self,
        out: &mut TargetOutcome,
        key: u64,
    ) -> Option<outcome::Checked> {
        let plan = self.config.fault_plan.as_ref()?;
        if plan.roll(FaultSite::SolverErr, key) {
            out.faults.solver_errs += 1;
            return Some(outcome::Checked::Errored);
        }
        if plan.roll(FaultSite::SolverUnknown, key) {
            out.faults.solver_unknowns += 1;
            return Some(outcome::Checked::Unknown);
        }
        None
    }

    /// Chaos: decides whether a probe run's observed samples are lost.
    pub(crate) fn chaos_probe(&self, out: &mut TargetOutcome, key: u64) -> bool {
        let fired = self
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.roll(FaultSite::ProbeFail, key));
        if fired {
            out.faults.probe_failures += 1;
        }
        fired
    }

    /// Merges solved/strategy values over the parent inputs: DART
    /// generates "variants of the previous inputs" (§1), so inputs the
    /// solver left unconstrained keep their old values.
    pub(crate) fn merge_inputs(&self, parent: &[i64], values: &BTreeMap<Var, i64>) -> Vec<i64> {
        let mut out = parent.to_vec();
        for (i, v) in self.ctx.input_vars().iter().enumerate() {
            if let Some(val) = values.get(v) {
                out[i] = *val;
            }
        }
        out
    }

    /// One escalated-budget retry of an `Unknown` satisfiability verdict
    /// (`DriverConfig::retry_escalation`). Runs on a detached solver:
    /// the inflated-budget verdict must not leak into the shared caches,
    /// where it would make other targets' outcomes depend on whether this
    /// retry ran first.
    pub(crate) fn escalated_smt(
        &self,
        smt: &SmtSolver,
        alt: &Formula,
        out: &mut TargetOutcome,
    ) -> Option<SmtResult> {
        let factor = self.config.retry_escalation;
        if factor <= 1.0 {
            return None;
        }
        let mut cfg = *smt.config();
        cfg.total_node_budget = scale_budget(cfg.total_node_budget, factor);
        cfg.lia.node_budget = scale_budget(cfg.lia.node_budget, factor);
        out.budget_escalations += 1;
        out.solver_calls += 1;
        smt.detached(cfg).check(alt).ok()
    }

    /// Escalated-budget retry of an `Unknown` validity verdict; same
    /// detachment rationale as [`Engine::escalated_smt`].
    pub(crate) fn escalated_validity(
        &self,
        validity: &ValidityChecker,
        samples: &Samples,
        extra: &Formula,
        alt: &Formula,
        out: &mut TargetOutcome,
    ) -> Option<ValidityOutcome> {
        let factor = self.config.retry_escalation;
        if factor <= 1.0 {
            return None;
        }
        let mut cfg = *validity.config();
        cfg.smt.total_node_budget = scale_budget(cfg.smt.total_node_budget, factor);
        cfg.smt.lia.node_budget = scale_budget(cfg.smt.lia.node_budget, factor);
        out.budget_escalations += 1;
        out.solver_calls += 1;
        validity
            .detached(cfg)
            .check_with(self.ctx.input_vars(), samples, extra, alt)
            .ok()
    }

    /// Processes one target against the generation snapshot, with the
    /// worker's panic isolated: a panic (organic or injected) abandons
    /// only this target, which is counted as *faulted* instead of
    /// aborting the campaign. The partial outcome of a panicked worker is
    /// discarded wholesale, so the merged report never depends on how far
    /// the worker got before unwinding.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_target(
        &self,
        strategy: &dyn Strategy,
        job: &outcome::Job,
        snapshot: &Samples,
        summaries: Option<&crate::summaries::SummaryTable>,
        smt: &SmtSolver,
        session: &SmtSession,
        validity: &ValidityChecker,
        campaign_end: Deadline,
    ) -> TargetOutcome {
        let tkey = path_key(&job.expected);
        let inject_panic = self
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.roll(FaultSite::WorkerPanic, tkey));
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("chaos: injected worker panic");
            }
            let mut out = TargetOutcome::default();
            // Per-target wall-clock cutoff, bounded by the campaign
            // deadline, threaded into the solver stack through
            // reconfigured clones that share the campaign's caches.
            // Deadline-induced `Unknown`s are never cached (see
            // `SmtSolver::check`), so an expired target cannot poison
            // another target's verdict.
            let deadline = match self.config.target_deadline {
                Some(d) => Deadline::after(d).earliest(campaign_end),
                None => campaign_end,
            };
            let (smt_local, validity_local);
            let (smt, validity) = if deadline.is_set() {
                let mut vcfg = *validity.config();
                vcfg.smt.deadline = deadline;
                smt_local = smt.reconfigured(vcfg.smt);
                validity_local = validity.reconfigured(vcfg);
                (&smt_local, &validity_local)
            } else {
                (smt, validity)
            };
            let cx = TargetCx {
                engine: self,
                snapshot,
                summaries,
                smt,
                session,
                validity,
                tkey,
            };
            strategy.process_target(&cx, job, &mut out);
            out
        }));
        match result {
            Ok(out) => out,
            Err(_) => TargetOutcome {
                faulted: true,
                faults: FaultCounters {
                    worker_panics: usize::from(inject_panic),
                    ..FaultCounters::default()
                },
                ..TargetOutcome::default()
            },
        }
    }
}
