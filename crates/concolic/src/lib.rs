//! Concolic (DART-style) execution engine for `mini` programs:
//! side-by-side concrete + symbolic execution, path-constraint
//! collection, and divergence detection.
//!
//! This crate reproduces the executable content of Figures 1–3 of
//! Godefroid's *Higher-Order Test Generation* (PLDI 2011):
//!
//! * [`execute`] runs a program concretely while collecting a
//!   [`PathConstraint`] under one of three [`SymbolicMode`]s — DART's
//!   unsound concretization, sound concretization (§3.3), or
//!   uninterpreted functions with input–output sampling (§4.1);
//! * [`PathConstraint::alt`] builds the alternate path constraints
//!   `ALT(pc)` that a directed search negates and solves;
//! * [`diverged`] compares an expected path against an actual run's
//!   branch trace (§3.2).
//!
//! The directed-search drivers that turn these pieces into the paper's
//! four test-generation techniques live in `hotg-core`.
//!
//! Two engines produce identical runs: the AST tree-walker
//! ([`execute_profiled`], the reference semantics) and the bytecode
//! shadow VM ([`execute_compiled_profiled`], the campaign fast path over
//! a [`hotg_lang::CompiledProgram`]). Both drive the same symbolic core,
//! so their [`ConcolicRun`]s are bit-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod exec;
mod path;
pub mod vm;

pub use context::ConcolicContext;
pub use exec::{execute, execute_opts, execute_profiled, ConcolicRun, ExecProfile, SymbolicMode};
pub use path::{diverged, EntryKind, PathConstraint, PathConstraintDisplay, PathEntry};
pub use vm::{execute_compiled_profiled, execute_compiled_with_scratch, ConcolicScratch};

#[cfg(test)]
mod tests;
