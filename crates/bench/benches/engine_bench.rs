//! Concolic-engine overhead (§6 implementability): plain interpretation
//! versus each symbolic mode, on the paper corpus and the lexer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotg_concolic::{execute, ConcolicContext, SymbolicMode};
use hotg_lang::{corpus, run, InputVector};

fn bench_corpus_modes(c: &mut Criterion) {
    let cases = [("foo", vec![567i64, 42]), ("bar", vec![33, 42])];
    for (name, inputs) in cases {
        let (program, natives) = corpus::all()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ctor)| ctor())
            .unwrap();
        let ctx = ConcolicContext::new(&program);
        let iv = InputVector::new(inputs);
        c.bench_function(&format!("engine/{name}/concrete_only"), |b| {
            b.iter(|| black_box(run(&program, &natives, &iv, 100_000)))
        });
        for mode in SymbolicMode::ALL {
            c.bench_function(&format!("engine/{name}/{}", mode.label()), |b| {
                b.iter(|| black_box(execute(&ctx, &program, &natives, &iv, mode, 100_000)))
            });
        }
    }
}

fn bench_lexer_execution(c: &mut Criterion) {
    let (program, natives) = hotg_lexapp::programs::keyword_parser();
    let ctx = ConcolicContext::new(&program);
    let iv = InputVector::new(hotg_lexapp::programs::encode_fixed(["if", "then", "end"]));
    for mode in SymbolicMode::ALL {
        c.bench_function(&format!("engine/lexer/{}", mode.label()), |b| {
            b.iter(|| black_box(execute(&ctx, &program, &natives, &iv, mode, 100_000)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_corpus_modes, bench_lexer_execution
}
criterion_main!(benches);
