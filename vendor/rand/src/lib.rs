//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment for this repository is fully offline, so the
//! workspace vendors the tiny subset of the `rand` 0.8 API it actually
//! uses: [`SeedableRng`], [`Rng::gen_range`] over integer ranges, and the
//! [`rngs::StdRng`]/[`rngs::SmallRng`] generators. Both generators are
//! deterministic splitmix64/LCG hybrids — statistically adequate for test
//! input generation, not for cryptography.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (API-compatible subset of `rand`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Inclusive bounds `(lo, hi)` of the range.
    ///
    /// Panics if the range is empty.
    fn bounds(&self) -> (i128, i128);
    /// Converts a sampled value back to the range's item type.
    fn from_i128(v: i128) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn bounds(&self) -> (i128, i128) {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start as i128, self.end as i128 - 1)
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn bounds(&self) -> (i128, i128) {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                (*self.start() as i128, *self.end() as i128)
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_range!(i64, i32, u32, u64, usize);

/// Core random-generation trait (API-compatible subset of `rand`).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        let span = (hi - lo + 1) as u128;
        // Rejection-free modulo sampling: the bias over a u128 numerator is
        // ≤ 2⁻⁶⁴, far below what test-input generation can observe.
        let v = ((self.next_u64() as u128) % span) as i128;
        R::from_i128(lo + v)
    }

    /// Uniform boolean.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// The concrete generators.
pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64-seeded LCG + xorshift
    /// output mix). Stands in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(u64);

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = self.0;
            (x ^ (x >> 31)).wrapping_mul(0xD6E8_FEB8_6659_FD93)
        }
    }

    /// Small fast generator; same engine as [`StdRng`] with a different
    /// seed schedule. Stands in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(StdRng);

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(<StdRng as super::SeedableRng>::seed_from_u64(
                seed ^ 0xA076_1D64_78BD_642F,
            ))
        }
    }

    impl super::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            super::Rng::next_u64(&mut self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: i64 = a.gen_range(-1000i64..=1000);
            let y: i64 = b.gen_range(-1000i64..=1000);
            assert_eq!(x, y);
            assert!((-1000..=1000).contains(&x));
        }
    }

    #[test]
    fn half_open_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: usize = r.gen_range(0usize..3);
            assert!(x < 3);
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
