//! The lint layer: turns [`AnalysisResult`] facts into structured
//! [`Diagnostic`]s.
//!
//! | code    | severity | meaning                                        |
//! |---------|----------|------------------------------------------------|
//! | `HA001` | warning  | branch condition is always true                |
//! | `HA002` | warning  | branch condition is always false               |
//! | `HA003` | warning  | unreachable statement                          |
//! | `HA004` | warning  | native call site is never executed             |
//! | `HA005` | info     | native call site has constant arguments        |

use crate::domain::Constancy;
use crate::fixpoint::{AnalysisResult, SiteClass};
use hotg_lang::{BranchId, DiagCode, Diagnostic, Program, Severity};

/// Produces lint diagnostics for `program` from its analysis `result`,
/// ordered by source position (unknown spans last), then by code.
pub fn lint(program: &Program, result: &AnalysisResult) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for id in 0..result.branch_count() {
        let id = BranchId(id as u32);
        let fact = result.branch(id);
        if !fact.reached {
            // The enclosing statement is already reported via HA003.
            continue;
        }
        let span = program.spans.branch_span(id);
        match fact.constancy {
            Constancy::AlwaysTrue => out.push(Diagnostic::new(
                Severity::Warning,
                DiagCode("HA001"),
                span,
                format!("condition at branch {id} is always true"),
            )),
            Constancy::AlwaysFalse => out.push(Diagnostic::new(
                Severity::Warning,
                DiagCode("HA002"),
                span,
                format!("condition at branch {id} is always false"),
            )),
            Constancy::Unknown => {}
        }
    }
    for &id in result.dead_stmts() {
        out.push(Diagnostic::new(
            Severity::Warning,
            DiagCode("HA003"),
            program.spans.stmt_span(id),
            format!("statement {id} is unreachable"),
        ));
    }
    for site in result.native_sites() {
        let span = program.spans.stmt_span(site.stmt);
        match &site.class {
            SiteClass::Dead => out.push(Diagnostic::new(
                Severity::Warning,
                DiagCode("HA004"),
                span,
                format!("native call site `{}` (site {}) is never executed", site.name, site.site),
            )),
            SiteClass::ConstArgs(args) => out.push(Diagnostic::new(
                Severity::Info,
                DiagCode("HA005"),
                span,
                format!(
                    "native `{}` (site {}) is always called with constant arguments ({}) and can be pre-sampled",
                    site.name,
                    site.site,
                    args.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )),
            SiteClass::InputDependent => {}
        }
    }
    out.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            let known = d.span.is_known();
            (!known, d.span, d.code, d.message.clone())
        };
        key(a).cmp(&key(b))
    });
    out
}
