//! Concrete interpreter for `mini` programs.
//!
//! This is the "concrete execution" half of the paper's side-by-side
//! concolic architecture (the concrete store `M`). The concolic engine in
//! `hotg-concolic` reuses [`eval_expr`] for its concrete evaluations, so
//! there is exactly one definition of the language's runtime semantics.
//!
//! Boolean connectives `&&`/`||` evaluate **both** operands (no short
//! circuit), matching the paper's treatment of compound branch conditions:
//! in Example 3 (`bar`), both `hash(y)` and `hash(x)` are observed even
//! though the first conjunct is already false.

use crate::ast::{BinOp, BranchId, Expr, FuncDef, Param, Program, Stmt, UnOp};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A registered native implementation (shared, dynamically typed).
///
/// Implementations are `Send + Sync` so a registry can be shared by the
/// worker threads of a parallel test-generation campaign.
pub type NativeImpl = Arc<dyn Fn(&[i64]) -> i64 + Send + Sync>;

/// A registry of native ("unknown") function implementations.
///
/// Native functions run real Rust code during execution but are opaque to
/// symbolic reasoning — they are the unknown functions of the paper.
#[derive(Clone, Default)]
pub struct NativeRegistry {
    fns: HashMap<String, (usize, NativeImpl)>,
}

impl fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.fns.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("NativeRegistry")
            .field("functions", &names)
            .finish()
    }
}

impl NativeRegistry {
    /// Creates an empty registry.
    pub fn new() -> NativeRegistry {
        NativeRegistry::default()
    }

    /// Registers a native function implementation.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        f: impl Fn(&[i64]) -> i64 + Send + Sync + 'static,
    ) {
        self.fns.insert(name.into(), (arity, Arc::new(f)));
    }

    /// `true` if a function with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// Looks up a registered implementation and its arity (used by the
    /// bytecode compiler to resolve call sites once per campaign).
    pub fn lookup(&self, name: &str) -> Option<(usize, NativeImpl)> {
        self.fns.get(name).map(|(a, f)| (*a, Arc::clone(f)))
    }

    /// Calls a registered function.
    ///
    /// # Errors
    ///
    /// Returns an error string if the function is missing or the arity
    /// does not match.
    pub fn call(&self, name: &str, args: &[i64]) -> Result<i64, String> {
        match self.fns.get(name) {
            None => Err(format!("native function `{name}` is not registered")),
            Some((arity, f)) => {
                if *arity != args.len() {
                    Err(format!(
                        "native `{name}` expects {arity} arguments, got {}",
                        args.len()
                    ))
                } else {
                    Ok(f(args))
                }
            }
        }
    }
}

/// A storage slot: scalar or fixed-length array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Scalar integer.
    Scalar(i64),
    /// Fixed-length integer array.
    Array(Vec<i64>),
}

/// The concrete store `M`: lexically scoped name → slot bindings.
#[derive(Clone, Debug, Default)]
pub struct Env {
    scopes: Vec<HashMap<String, Slot>>,
}

impl Env {
    /// Creates an empty store with one global scope.
    pub fn new() -> Env {
        Env {
            scopes: vec![HashMap::new()],
        }
    }

    /// Enters a nested scope.
    pub fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Leaves the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if only the global scope remains.
    pub fn pop_scope(&mut self) {
        assert!(self.scopes.len() > 1, "cannot pop the global scope");
        self.scopes.pop();
    }

    /// Declares a binding in the innermost scope.
    pub fn declare(&mut self, name: impl Into<String>, slot: Slot) {
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name.into(), slot);
    }

    /// Reads a binding (innermost scope wins).
    pub fn get(&self, name: &str) -> Option<&Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Writes to an existing binding (innermost scope wins).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Slot> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }
}

/// A flat vector of concrete input values (array parameters contribute one
/// value per element, in order).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct InputVector {
    values: Vec<i64>,
}

impl InputVector {
    /// Creates an input vector from flat values.
    pub fn new(values: Vec<i64>) -> InputVector {
        InputVector { values }
    }

    /// All-zero inputs sized for a program.
    pub fn zeros(program: &Program) -> InputVector {
        InputVector {
            values: vec![0; program.input_width()],
        }
    }

    /// The flat values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Number of flat values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at a flat index.
    pub fn get(&self, i: usize) -> Option<i64> {
        self.values.get(i).copied()
    }

    /// Replaces the value at a flat index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set(&mut self, i: usize, v: i64) {
        self.values[i] = v;
    }

    /// Builds the initial environment binding program parameters.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match
    /// [`Program::input_width`].
    pub fn bind(&self, program: &Program) -> Env {
        assert_eq!(
            self.values.len(),
            program.input_width(),
            "input vector width mismatch"
        );
        let mut env = Env::new();
        let mut i = 0;
        for p in &program.params {
            match p {
                Param::Scalar(name) => {
                    env.declare(name.clone(), Slot::Scalar(self.values[i]));
                    i += 1;
                }
                Param::Array(name, len) => {
                    env.declare(name.clone(), Slot::Array(self.values[i..i + len].to_vec()));
                    i += len;
                }
            }
        }
        env
    }
}

impl From<Vec<i64>> for InputVector {
    fn from(values: Vec<i64>) -> InputVector {
        InputVector { values }
    }
}

/// The kind of a runtime fault, for per-kind breakdowns in campaign
/// reports. The human-readable message lives in [`Fault::message`];
/// `Display` for [`Fault`] prints only the message, so rendered fault
/// text is identical to the pre-structured (stringly) representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Division or remainder by zero.
    DivByZero,
    /// Arithmetic overflow (including negation of `i64::MIN`).
    Overflow,
    /// Array index out of bounds.
    OutOfBounds,
    /// Fuel ran out inside an execution that must report it as a fault
    /// (ordinary top-level fuel exhaustion is [`Outcome::OutOfFuel`]).
    FuelExhausted,
    /// A native ("unknown") function call failed (missing registration,
    /// arity mismatch).
    NativeError,
    /// A fault injected by a chaos/fault-injection harness.
    Injected,
    /// Anything else (type confusion, unbound names, malformed bodies).
    Other,
}

impl FaultKind {
    /// Stable lowercase label (used as a report key).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DivByZero => "div-by-zero",
            FaultKind::Overflow => "overflow",
            FaultKind::OutOfBounds => "out-of-bounds",
            FaultKind::FuelExhausted => "fuel-exhausted",
            FaultKind::NativeError => "native-error",
            FaultKind::Injected => "injected",
            FaultKind::Other => "other",
        }
    }
}

/// A structured runtime fault: a machine-readable kind plus the exact
/// human-readable message the stringly representation used to carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// What class of fault this is.
    pub kind: FaultKind,
    /// Human-readable description (unchanged from the pre-enum format).
    pub message: String,
}

impl Fault {
    /// A fault of an explicit kind.
    pub fn new(kind: FaultKind, message: impl Into<String>) -> Fault {
        Fault {
            kind,
            message: message.into(),
        }
    }

    /// An [`FaultKind::Other`] fault.
    pub fn other(message: impl Into<String>) -> Fault {
        Fault::new(FaultKind::Other, message)
    }

    /// A [`FaultKind::NativeError`] fault.
    pub fn native(message: impl Into<String>) -> Fault {
        Fault::new(FaultKind::NativeError, message)
    }
}

/// Prints the message only, so `format!("{fault}")` is byte-identical to
/// the old `String`-typed representation.
impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for Fault {
    fn from(message: String) -> Fault {
        Fault::other(message)
    }
}

impl From<&str> for Fault {
    fn from(message: &str) -> Fault {
        Fault::other(message.to_string())
    }
}

/// Why an execution stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Normal termination (`return` or falling off the end).
    Returned,
    /// An `error(code)` statement was reached — a bug was triggered.
    Error(i64),
    /// Division by zero, out-of-bounds access, or arithmetic overflow.
    RuntimeFault(Fault),
    /// The fuel budget was exhausted (the paper's timeout for
    /// non-terminating executions, Section 2 footnote 2).
    OutOfFuel,
}

impl Outcome {
    /// `true` for [`Outcome::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self, Outcome::Error(_))
    }
}

/// What one concrete execution did: the branch trace, observed native
/// calls, and (when statement coverage is enabled) the executed
/// statements.
#[derive(Clone, Default)]
pub struct Trace {
    /// `(site, direction)` for every executed conditional, in order.
    pub branches: Vec<(BranchId, bool)>,
    /// `(name, args, result)` for every native call, in order.
    pub native_calls: Vec<(String, Vec<i64>, i64)>,
    /// Pre-order ids (see [`crate::ast::stmt_ids`]) of every statement the
    /// interpreter executed. Empty unless the trace was created with
    /// [`Trace::for_program`] (as [`run`] does).
    pub stmts: std::collections::BTreeSet<u32>,
    /// Statement address → pre-order id, filled by [`Trace::for_program`].
    index: Arc<HashMap<usize, u32>>,
}

/// Trace equality compares the *observable* behaviour — branch directions
/// and native calls — so traces with and without statement coverage
/// enabled compare equal when the execution behaved identically.
impl PartialEq for Trace {
    fn eq(&self, other: &Trace) -> bool {
        self.branches == other.branches && self.native_calls == other.native_calls
    }
}

impl Eq for Trace {}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("branches", &self.branches)
            .field("native_calls", &self.native_calls)
            .field("stmts", &self.stmts)
            .finish()
    }
}

impl Trace {
    /// A trace that additionally records which statements of `program`
    /// execute (by pre-order [`crate::diag::StmtId`] index).
    pub fn for_program(program: &Program) -> Trace {
        let index = crate::ast::stmt_ids(program)
            .into_iter()
            .map(|(id, s)| (s as *const Stmt as usize, id.0))
            .collect();
        Trace {
            index: Arc::new(index),
            ..Trace::default()
        }
    }

    fn record_stmt(&mut self, s: &Stmt) {
        if let Some(&i) = self.index.get(&(s as *const Stmt as usize)) {
            self.stmts.insert(i);
        }
    }

    /// The branch-direction path as a compact vector.
    pub fn path(&self) -> Vec<(BranchId, bool)> {
        self.branches.clone()
    }
}

/// A concrete value during evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CVal {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
}

impl CVal {
    /// Extracts an integer.
    ///
    /// # Errors
    ///
    /// Returns an error string if the value is a boolean (the checker
    /// rules this out for checked programs).
    pub fn int(self) -> Result<i64, String> {
        match self {
            CVal::Int(v) => Ok(v),
            CVal::Bool(_) => Err("expected integer value".into()),
        }
    }

    /// Extracts a boolean.
    ///
    /// # Errors
    ///
    /// Returns an error string if the value is an integer.
    pub fn bool(self) -> Result<bool, String> {
        match self {
            CVal::Bool(v) => Ok(v),
            CVal::Int(_) => Err("expected boolean value".into()),
        }
    }
}

/// Evaluates an expression concretely, recording native calls into
/// `trace`. Calls to defined functions execute their bodies (consuming
/// `fuel`).
///
/// # Errors
///
/// Returns [`EvalError::Fault`] on division/remainder by zero, overflow,
/// out-of-bounds indexing, missing bindings, or native-call failures, and
/// [`EvalError::Stop`] when a called function stops the whole program
/// (`error(code)` or fuel exhaustion).
pub fn eval_expr(
    e: &Expr,
    env: &Env,
    natives: &NativeRegistry,
    functions: &[FuncDef],
    trace: &mut Trace,
    fuel: &mut u64,
) -> Result<CVal, EvalError> {
    match e {
        Expr::Int(v) => Ok(CVal::Int(*v)),
        Expr::Var(name) => match env.get(name) {
            Some(Slot::Scalar(v)) => Ok(CVal::Int(*v)),
            Some(Slot::Array(_)) => Err(format!("array `{name}` used as scalar").into()),
            None => Err(format!("unbound variable `{name}`").into()),
        },
        Expr::Index(name, idx) => {
            let i = eval_expr(idx, env, natives, functions, trace, fuel)?.int()?;
            match env.get(name) {
                Some(Slot::Array(items)) => {
                    let len = items.len();
                    usize::try_from(i)
                        .ok()
                        .and_then(|i| items.get(i).copied())
                        .map(CVal::Int)
                        .ok_or_else(|| {
                            EvalError::Fault(Fault::new(
                                FaultKind::OutOfBounds,
                                format!("index {i} out of bounds for `{name}` (len {len})"),
                            ))
                        })
                }
                Some(Slot::Scalar(_)) => Err(format!("cannot index scalar `{name}`").into()),
                None => Err(format!("unbound array `{name}`").into()),
            }
        }
        Expr::Unary(UnOp::Neg, inner) => {
            let v = eval_expr(inner, env, natives, functions, trace, fuel)?.int()?;
            v.checked_neg().map(CVal::Int).ok_or_else(|| {
                EvalError::Fault(Fault::new(
                    FaultKind::Overflow,
                    "arithmetic overflow in negation",
                ))
            })
        }
        Expr::Unary(UnOp::Not, inner) => {
            let v = eval_expr(inner, env, natives, functions, trace, fuel)?.bool()?;
            Ok(CVal::Bool(!v))
        }
        Expr::Binary(op, a, b) => {
            let va = eval_expr(a, env, natives, functions, trace, fuel)?;
            let vb = eval_expr(b, env, natives, functions, trace, fuel)?;
            Ok(eval_binop(*op, va, vb)?)
        }
        Expr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, env, natives, functions, trace, fuel)?.int()?);
            }
            if natives.contains(name) {
                let out = natives.call(name, &vals).map_err(Fault::native)?;
                trace.native_calls.push((name.clone(), vals, out));
                Ok(CVal::Int(out))
            } else if let Some(def) = functions.iter().find(|f| f.name == *name) {
                let out = call_function(def, &vals, natives, functions, trace, fuel)?;
                Ok(CVal::Int(out))
            } else {
                Err(format!("callable `{name}` is not defined").into())
            }
        }
    }
}

/// Executes a defined function body on concrete arguments.
///
/// The function runs in a fresh environment (no access to caller
/// bindings); `error(code)` and fuel exhaustion inside the body stop the
/// whole program via [`EvalError::Stop`].
///
/// # Errors
///
/// [`EvalError::Fault`] on runtime faults or a body that terminates
/// without `return expr;`.
pub fn call_function(
    def: &FuncDef,
    args: &[i64],
    natives: &NativeRegistry,
    functions: &[FuncDef],
    trace: &mut Trace,
    fuel: &mut u64,
) -> Result<i64, EvalError> {
    if args.len() != def.params.len() {
        return Err(format!(
            "fn `{}` expects {} arguments, got {}",
            def.name,
            def.params.len(),
            args.len()
        )
        .into());
    }
    let mut env = Env::new();
    for (p, v) in def.params.iter().zip(args.iter()) {
        env.declare(p.clone(), Slot::Scalar(*v));
    }
    match exec_block(&def.body, &mut env, natives, functions, trace, fuel) {
        Err(m) => Err(EvalError::Fault(m)),
        Ok(Flow::ReturnVal(v)) => Ok(v),
        Ok(Flow::Continue) | Ok(Flow::Stop(Outcome::Returned)) => {
            Err(EvalError::Fault(Fault::other(format!(
                "fn `{}` terminated without returning a value",
                def.name
            ))))
        }
        Ok(Flow::Stop(o)) => Err(EvalError::Stop(o)),
    }
}

/// Applies a binary operator to already-evaluated operands.
///
/// # Errors
///
/// Returns a [`Fault`] on type confusion, overflow, or zero divisor.
pub fn eval_binop(op: BinOp, a: CVal, b: CVal) -> Result<CVal, Fault> {
    if op.is_logical() {
        let (x, y) = (a.bool()?, b.bool()?);
        return Ok(CVal::Bool(match op {
            BinOp::And => x && y,
            BinOp::Or => x || y,
            _ => unreachable!(),
        }));
    }
    let (x, y) = (a.int()?, b.int()?);
    if op.is_comparison() {
        return Ok(CVal::Bool(match op {
            BinOp::Eq => x == y,
            BinOp::Ne => x != y,
            BinOp::Lt => x < y,
            BinOp::Le => x <= y,
            BinOp::Gt => x > y,
            BinOp::Ge => x >= y,
            _ => unreachable!(),
        }));
    }
    let out = match op {
        BinOp::Add => x.checked_add(y),
        BinOp::Sub => x.checked_sub(y),
        BinOp::Mul => x.checked_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(Fault::new(FaultKind::DivByZero, "division by zero"));
            }
            x.checked_div(y)
        }
        BinOp::Mod => {
            if y == 0 {
                return Err(Fault::new(FaultKind::DivByZero, "remainder by zero"));
            }
            x.checked_rem(y)
        }
        _ => unreachable!(),
    };
    out.map(CVal::Int).ok_or_else(|| {
        Fault::new(
            FaultKind::Overflow,
            format!("arithmetic overflow in `{}`", op.symbol()),
        )
    })
}

/// Why expression evaluation aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A runtime fault (division by zero, out-of-bounds, overflow, …).
    Fault(Fault),
    /// A full program stop raised inside a called function
    /// (`error(code)` or fuel exhaustion).
    Stop(Outcome),
}

impl From<Fault> for EvalError {
    fn from(f: Fault) -> EvalError {
        EvalError::Fault(f)
    }
}

impl From<String> for EvalError {
    fn from(m: String) -> EvalError {
        EvalError::Fault(Fault::other(m))
    }
}

impl From<&str> for EvalError {
    fn from(m: &str) -> EvalError {
        EvalError::Fault(Fault::other(m.to_string()))
    }
}

enum Flow {
    Continue,
    Stop(Outcome),
    /// `return expr;` — terminates a function body (or a value-returning
    /// standalone program built by the summarizer).
    ReturnVal(i64),
}

/// Runs a program on concrete inputs.
///
/// `fuel` bounds the number of executed statements (the paper's timeout
/// for potentially non-terminating executions).
///
/// # Examples
///
/// ```
/// use hotg_lang::{corpus, InputVector, run};
///
/// let (program, natives) = corpus::obscure();
/// let (outcome, trace) = run(&program, &natives, &InputVector::new(vec![33, 42]), 10_000);
/// assert_eq!(outcome, hotg_lang::Outcome::Returned);
/// assert_eq!(trace.native_calls.len(), 1); // one hash(y) observation
/// ```
pub fn run(
    program: &Program,
    natives: &NativeRegistry,
    inputs: &InputVector,
    fuel: u64,
) -> (Outcome, Trace) {
    let mut env = inputs.bind(program);
    let mut trace = Trace::for_program(program);
    let mut fuel = fuel;
    match exec_block(
        &program.body,
        &mut env,
        natives,
        &program.functions,
        &mut trace,
        &mut fuel,
    ) {
        Ok(Flow::Continue) | Ok(Flow::Stop(Outcome::Returned)) | Ok(Flow::ReturnVal(_)) => {
            (Outcome::Returned, trace)
        }
        Ok(Flow::Stop(outcome)) => (outcome, trace),
        Err(msg) => (Outcome::RuntimeFault(msg), trace),
    }
}

/// Maps an [`EvalError`] into the block-execution result space.
macro_rules! eval_or_flow {
    ($r:expr) => {
        match $r {
            Ok(v) => v,
            Err(EvalError::Fault(m)) => return Err(m),
            Err(EvalError::Stop(o)) => return Ok(Flow::Stop(o)),
        }
    };
}

fn exec_block(
    body: &[Stmt],
    env: &mut Env,
    natives: &NativeRegistry,
    functions: &[FuncDef],
    trace: &mut Trace,
    fuel: &mut u64,
) -> Result<Flow, Fault> {
    for s in body {
        if *fuel == 0 {
            return Ok(Flow::Stop(Outcome::OutOfFuel));
        }
        *fuel -= 1;
        trace.record_stmt(s);
        match s {
            Stmt::Let(name, e) => {
                let v = eval_or_flow!(eval_expr(e, env, natives, functions, trace, fuel)
                    .and_then(|v| v.int().map_err(EvalError::from)));
                env.declare(name.clone(), Slot::Scalar(v));
            }
            Stmt::LetArray(name, len) => {
                env.declare(name.clone(), Slot::Array(vec![0; *len]));
            }
            Stmt::Assign(name, e) => {
                let v = eval_or_flow!(eval_expr(e, env, natives, functions, trace, fuel)
                    .and_then(|v| v.int().map_err(EvalError::from)));
                match env.get_mut(name) {
                    Some(Slot::Scalar(slot)) => *slot = v,
                    Some(Slot::Array(_)) => {
                        return Err(format!("cannot assign whole array `{name}`").into())
                    }
                    None => return Err(format!("assignment to unbound `{name}`").into()),
                }
            }
            Stmt::AssignIndex(name, idx, val) => {
                let i = eval_or_flow!(eval_expr(idx, env, natives, functions, trace, fuel)
                    .and_then(|v| v.int().map_err(EvalError::from)));
                let v = eval_or_flow!(eval_expr(val, env, natives, functions, trace, fuel)
                    .and_then(|v| v.int().map_err(EvalError::from)));
                match env.get_mut(name) {
                    Some(Slot::Array(items)) => {
                        let len = items.len();
                        let slot = usize::try_from(i)
                            .ok()
                            .and_then(|i| items.get_mut(i))
                            .ok_or_else(|| {
                                Fault::new(
                                    FaultKind::OutOfBounds,
                                    format!("index {i} out of bounds for `{name}` (len {len})"),
                                )
                            })?;
                        *slot = v;
                    }
                    Some(Slot::Scalar(_)) => {
                        return Err(format!("cannot index scalar `{name}`").into())
                    }
                    None => return Err(format!("assignment to unbound `{name}`").into()),
                }
            }
            Stmt::If {
                id,
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = eval_or_flow!(eval_expr(cond, env, natives, functions, trace, fuel)
                    .and_then(|v| v.bool().map_err(EvalError::from)));
                trace.branches.push((*id, taken));
                env.push_scope();
                let flow = if taken {
                    exec_block(then_branch, env, natives, functions, trace, fuel)?
                } else {
                    exec_block(else_branch, env, natives, functions, trace, fuel)?
                };
                env.pop_scope();
                if !matches!(flow, Flow::Continue) {
                    return Ok(flow);
                }
            }
            Stmt::While { id, cond, body } => loop {
                if *fuel == 0 {
                    return Ok(Flow::Stop(Outcome::OutOfFuel));
                }
                *fuel -= 1;
                let taken = eval_or_flow!(eval_expr(cond, env, natives, functions, trace, fuel)
                    .and_then(|v| v.bool().map_err(EvalError::from)));
                trace.branches.push((*id, taken));
                if !taken {
                    break;
                }
                env.push_scope();
                let flow = exec_block(body, env, natives, functions, trace, fuel)?;
                env.pop_scope();
                if !matches!(flow, Flow::Continue) {
                    return Ok(flow);
                }
            },
            Stmt::Error(code) => return Ok(Flow::Stop(Outcome::Error(*code))),
            Stmt::Return => return Ok(Flow::Stop(Outcome::Returned)),
            Stmt::ReturnValue(e) => {
                let v = eval_or_flow!(eval_expr(e, env, natives, functions, trace, fuel)
                    .and_then(|v| v.int().map_err(EvalError::from)));
                return Ok(Flow::ReturnVal(v));
            }
        }
    }
    Ok(Flow::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;
    use crate::parser::parse;

    fn registry_with_hash() -> NativeRegistry {
        let mut n = NativeRegistry::new();
        n.register("hash", 1, |args| args[0].wrapping_mul(13) % 1000);
        n
    }

    #[test]
    fn straight_line() {
        let p = parse("program t(x: int) { let a = x + 1; if (a == 5) { error(9); } return; }")
            .unwrap();
        let n = NativeRegistry::new();
        let (o, t) = run(&p, &n, &InputVector::new(vec![4]), 100);
        assert_eq!(o, Outcome::Error(9));
        assert_eq!(t.branches, vec![(crate::ast::BranchId(0), true)]);
        let (o2, _) = run(&p, &n, &InputVector::new(vec![5]), 100);
        assert_eq!(o2, Outcome::Returned);
    }

    #[test]
    fn native_calls_recorded() {
        let p = parse(
            "native hash/1; program t(x: int, y: int) { if (x == hash(y)) { error(1); } return; }",
        )
        .unwrap();
        let n = registry_with_hash();
        let (_, t) = run(&p, &n, &InputVector::new(vec![0, 42]), 100);
        assert_eq!(t.native_calls.len(), 1);
        let (name, args, out) = &t.native_calls[0];
        assert_eq!(name, "hash");
        assert_eq!(args, &vec![42]);
        assert_eq!(*out, 42 * 13 % 1000);
    }

    #[test]
    fn no_short_circuit() {
        // Both hash calls observed even when the first conjunct is false.
        let p = parse(
            r#"native hash/1;
            program bar(x: int, y: int) {
                if (x == hash(y) && y == hash(x)) { error(1); }
                return;
            }"#,
        )
        .unwrap();
        let n = registry_with_hash();
        let (_, t) = run(&p, &n, &InputVector::new(vec![33, 42]), 100);
        assert_eq!(t.native_calls.len(), 2);
    }

    #[test]
    fn while_loop_and_fuel() {
        let p =
            parse("program t(x: int) { let i = 0; while (i < x) { i = i + 1; } return; }").unwrap();
        let n = NativeRegistry::new();
        let (o, t) = run(&p, &n, &InputVector::new(vec![3]), 1000);
        assert_eq!(o, Outcome::Returned);
        // 3 true iterations + 1 false exit test.
        assert_eq!(t.branches.len(), 4);
        let (o2, _) = run(&p, &n, &InputVector::new(vec![1_000_000]), 50);
        assert_eq!(o2, Outcome::OutOfFuel);
    }

    #[test]
    fn arrays_read_write() {
        let p = parse(
            r#"program t(buf: array[3]) {
                let acc[2];
                acc[0] = buf[0] + buf[1];
                acc[1] = acc[0] + buf[2];
                if (acc[1] == 6) { error(3); }
                return;
            }"#,
        )
        .unwrap();
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![1, 2, 3]), 100);
        assert_eq!(o, Outcome::Error(3));
    }

    #[test]
    fn out_of_bounds_faults() {
        let p = parse("program t(buf: array[2], i: int) { let a = buf[i]; return; }").unwrap();
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![1, 2, 5]), 100);
        assert!(
            matches!(&o, Outcome::RuntimeFault(m) if m.kind == FaultKind::OutOfBounds
                && m.message.contains("out of bounds"))
        );
        let (o2, _) = run(&p, &n, &InputVector::new(vec![1, 2, -1]), 100);
        assert!(matches!(o2, Outcome::RuntimeFault(_)));
    }

    #[test]
    fn division_faults() {
        let p = parse("program t(x: int) { let a = 10 / x; return; }").unwrap();
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![0]), 100);
        assert!(
            matches!(&o, Outcome::RuntimeFault(m) if m.kind == FaultKind::DivByZero
                && m.message.contains("division by zero"))
        );
        let (o2, _) = run(&p, &n, &InputVector::new(vec![2]), 100);
        assert_eq!(o2, Outcome::Returned);
    }

    #[test]
    fn overflow_faults() {
        let p = parse("program t(x: int) { let a = x * x; return; }").unwrap();
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![i64::MAX]), 100);
        assert!(
            matches!(&o, Outcome::RuntimeFault(m) if m.kind == FaultKind::Overflow
                && m.message.contains("overflow"))
        );
    }

    #[test]
    fn scoping_restores_outer_binding() {
        let p = parse(
            r#"program t(x: int) {
                let a = 1;
                if (x == 0) { let a = 2; }
                if (a == 1) { error(1); }
                return;
            }"#,
        )
        .unwrap();
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![0]), 100);
        assert_eq!(o, Outcome::Error(1));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn input_vector_binding_mismatch() {
        let p = parse("program t(x: int, y: int) { return; }").unwrap();
        let _ = InputVector::new(vec![1]).bind(&p);
    }

    #[test]
    fn registry_errors() {
        let n = registry_with_hash();
        assert!(n.call("hash", &[1]).is_ok());
        assert!(n.call("hash", &[1, 2]).is_err());
        assert!(n.call("missing", &[]).is_err());
        assert!(n.contains("hash"));
        assert!(!n.contains("missing"));
        assert!(format!("{n:?}").contains("hash"));
    }

    #[test]
    fn function_calls_execute() {
        let p = parse(
            r#"
            fn double(v: int) { return v * 2; }
            fn quad(v: int) { return double(double(v)); }
            program t(x: int) {
                if (quad(x) == 20) { error(1); }
                return;
            }
        "#,
        )
        .unwrap();
        crate::check::check(&p).unwrap();
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![5]), 1000);
        assert_eq!(o, Outcome::Error(1));
        let (o2, _) = run(&p, &n, &InputVector::new(vec![4]), 1000);
        assert_eq!(o2, Outcome::Returned);
    }

    #[test]
    fn function_error_stops_program() {
        let p = parse(
            r#"
            fn guard(v: int) {
                if (v < 0) { error(7); }
                return v;
            }
            program t(x: int) {
                let a = guard(x);
                error(1);
            }
        "#,
        )
        .unwrap();
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![-1]), 1000);
        assert_eq!(o, Outcome::Error(7), "error inside fn stops the program");
        let (o2, _) = run(&p, &n, &InputVector::new(vec![1]), 1000);
        assert_eq!(o2, Outcome::Error(1));
    }

    #[test]
    fn function_scoping_is_fresh() {
        // The function must not see the caller's locals.
        let p = parse(
            r#"
            fn probe(v: int) { return v + secret; }
            program t(x: int) {
                let secret = 10;
                let a = probe(x);
                return;
            }
        "#,
        )
        .unwrap();
        // The checker rejects it…
        assert!(crate::check::check(&p).is_err());
        // …and the interpreter faults rather than leaking scope.
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![1]), 1000);
        assert!(matches!(o, Outcome::RuntimeFault(_)));
    }

    #[test]
    fn function_fuel_is_shared() {
        let p = parse(
            r#"
            fn spin(v: int) {
                let i = 0;
                while (i < 1000) { i = i + 1; }
                return i;
            }
            program t(x: int) {
                let a = spin(x);
                return;
            }
        "#,
        )
        .unwrap();
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![1]), 50);
        assert_eq!(o, Outcome::OutOfFuel);
    }

    #[test]
    fn function_missing_return_faults() {
        // Bypasses the checker: hand-built body with a bare `return;`.
        use crate::ast::{FuncDef, NativeDecl, Param};
        let p = Program {
            name: "t".into(),
            params: vec![Param::Scalar("x".into())],
            natives: Vec::<NativeDecl>::new(),
            functions: vec![FuncDef {
                name: "broken".into(),
                params: vec!["v".into()],
                body: vec![Stmt::Return],
            }],
            body: vec![Stmt::Let(
                "a".into(),
                Expr::Call("broken".into(), vec![Expr::Var("x".into())]),
            )],
            branch_count: 0,
            spans: Default::default(),
        };
        let n = NativeRegistry::new();
        let (o, _) = run(&p, &n, &InputVector::new(vec![1]), 100);
        assert!(matches!(o, Outcome::RuntimeFault(m) if m.message.contains("without returning")),);
    }

    #[test]
    fn cval_conversions() {
        assert_eq!(CVal::Int(3).int(), Ok(3));
        assert!(CVal::Int(3).bool().is_err());
        assert_eq!(CVal::Bool(true).bool(), Ok(true));
        assert!(CVal::Bool(true).int().is_err());
    }
}
