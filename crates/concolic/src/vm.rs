//! Concolic shadow VM: executes a [`CompiledProgram`] carrying a
//! `(concrete, symbolic)` pair per operand and frame slot, producing
//! [`ConcolicRun`]s bit-identical to the tree-walking executor in
//! [`crate::exec`].
//!
//! The symbolic semantics — concretization policy, delayed
//! concretization, IOF sampling, uninterpreted applications, branch
//! recording and the summarized-call suppress counter — are not
//! reimplemented here: the VM drives the same [`SymSide`] core the
//! walker drives, at the same points in the same order. What the VM
//! replaces is only the *driving* machinery: name-hashed environments
//! become index-addressed frame slots, and the AST walk becomes flat
//! bytecode dispatch.
//!
//! Fuel is charged at exactly the walker's points (see
//! `hotg_lang::vm`'s module docs): one unit per [`Instr::Stmt`]
//! (check-then-decrement before the statement), one per
//! [`Instr::LoopGate`] (before each `while` condition), nothing else.
//!
//! Per-run scratch (operand stack + frames) is pooled per worker thread
//! so steady-state campaign runs allocate only what the symbolic side
//! itself produces (terms, constraints, samples).

use crate::context::ConcolicContext;
use crate::exec::{ConcolicRun, ExecProfile, Sym, SymSide};
use hotg_lang::compile::{CompiledProgram, Instr, ParamSlot};
use hotg_lang::{eval_binop, CVal, Fault, FaultKind, InputVector, Outcome};
use hotg_logic::{FuncSym, Term};
use std::cell::RefCell;

/// Reusable per-worker scratch for the shadow VM: the `(concrete,
/// symbolic)` operand stack and one frame per call depth.
#[derive(Debug, Default)]
pub struct ConcolicScratch {
    stack: Vec<(CVal, Sym)>,
    frames: Vec<Frame>,
}

impl ConcolicScratch {
    /// Fresh, empty scratch.
    pub fn new() -> ConcolicScratch {
        ConcolicScratch::default()
    }
}

#[derive(Debug, Default)]
struct Frame {
    scalars: Vec<i64>,
    sterms: Vec<Term>,
    arrays: Vec<Vec<i64>>,
    sarrays: Vec<Vec<Term>>,
}

impl Frame {
    /// Sizes the frame for a block; slots are written before read in
    /// checked programs, so stale values are unobservable (same argument
    /// as the concrete VM's frames).
    fn size_for(&mut self, scalars: u32, arrays: usize) {
        if self.scalars.len() < scalars as usize {
            self.scalars.resize(scalars as usize, 0);
        }
        if self.sterms.len() < scalars as usize {
            self.sterms.resize(scalars as usize, Term::int(0));
        }
        while self.arrays.len() < arrays {
            self.arrays.push(Vec::new());
        }
        while self.sarrays.len() < arrays {
            self.sarrays.push(Vec::new());
        }
    }
}

/// How a block finished.
enum Exit {
    Fall,
    Stop(Outcome),
    Ret(i64, Term),
}

struct Vm<'a, 's> {
    ctx: &'a ConcolicContext,
    cp: &'a CompiledProgram,
    inputs: &'a InputVector,
    scratch: &'s mut ConcolicScratch,
    sym: SymSide,
    /// Per-native-table signature symbols, resolved once per run.
    native_syms: Vec<Option<FuncSym>>,
    /// Per-function-table signature symbols (for summarized calls).
    defined_syms: Vec<Option<FuncSym>>,
    fuel: u64,
    instructions: u64,
}

impl Vm<'_, '_> {
    fn exec_block(&mut self, block_idx: usize, depth: usize) -> Result<Exit, Fault> {
        let cp = self.cp;
        let block = &cp.blocks[block_idx];
        let code = &block.code;
        let mut pc = 0usize;
        while let Some(instr) = code.get(pc) {
            pc += 1;
            self.instructions += 1;
            match *instr {
                Instr::Stmt(_) => {
                    // The concolic walker does not record statement
                    // coverage (engine coverage is branch-based), so the
                    // id is fuel-gate-only here.
                    if self.fuel == 0 {
                        return Ok(Exit::Stop(Outcome::OutOfFuel));
                    }
                    self.fuel -= 1;
                }
                Instr::LoopGate => {
                    if self.fuel == 0 {
                        return Ok(Exit::Stop(Outcome::OutOfFuel));
                    }
                    self.fuel -= 1;
                }
                Instr::PushInt(v) => self
                    .scratch
                    .stack
                    .push((CVal::Int(v), Sym::I(Term::int(v)))),
                Instr::LoadScalar(slot) => {
                    let frame = &self.scratch.frames[depth];
                    let c = frame.scalars[slot as usize];
                    let t = frame.sterms[slot as usize].clone();
                    self.scratch.stack.push((CVal::Int(c), Sym::I(t)));
                }
                Instr::LoadElem(slot) => {
                    let (ci, si) = self.pop();
                    let i = ci.int()?;
                    let idx_term = si.int();
                    let frame = &self.scratch.frames[depth];
                    let items = &frame.arrays[slot as usize];
                    let len = items.len();
                    let value = usize::try_from(i)
                        .ok()
                        .and_then(|i| items.get(i).copied())
                        .ok_or_else(|| {
                            let name = &block.arrays[slot as usize].name;
                            Fault::new(
                                FaultKind::OutOfBounds,
                                format!("index {i} out of bounds for `{name}` (len {len})"),
                            )
                        })?;
                    let term = if matches!(idx_term, Term::Int(_)) {
                        // Concrete index: precise symbolic select.
                        frame.sarrays[slot as usize][i as usize].clone()
                    } else {
                        // Symbolic index: unknown instruction in every
                        // mode — pin the index and selected element
                        // (same as the walker's `Expr::Index` arm).
                        let elem = frame.sarrays[slot as usize][i as usize].clone();
                        let combined = idx_term + elem;
                        self.sym.concretize(self.inputs, &combined, value)
                    };
                    self.scratch.stack.push((CVal::Int(value), Sym::I(term)));
                }
                Instr::StoreScalar(slot) => {
                    let (c, s) = self.pop();
                    let v = c.int()?;
                    let frame = &mut self.scratch.frames[depth];
                    frame.scalars[slot as usize] = v;
                    frame.sterms[slot as usize] = s.int();
                }
                Instr::StoreElem(slot) => {
                    let (cv, sv) = self.pop();
                    let (ci, si) = self.pop();
                    let i = ci.int()?;
                    let v = cv.int()?;
                    let idx_term = si.int();
                    let val_term = sv.int();
                    if !matches!(idx_term, Term::Int(_)) {
                        // Symbolic store index: pin it (sound in all
                        // modes but unsound-concretize), store under the
                        // concrete cell — walker's `AssignIndex` arm.
                        let _ = self.sym.concretize(self.inputs, &idx_term, i);
                    }
                    let frame = &mut self.scratch.frames[depth];
                    let items = &mut frame.arrays[slot as usize];
                    let len = items.len();
                    let cell = usize::try_from(i)
                        .ok()
                        .and_then(|i| items.get_mut(i))
                        .ok_or_else(|| {
                            let name = &block.arrays[slot as usize].name;
                            Fault::new(
                                FaultKind::OutOfBounds,
                                format!("index {i} out of bounds for `{name}` (len {len})"),
                            )
                        })?;
                    *cell = v;
                    frame.sarrays[slot as usize][i as usize] = val_term;
                }
                Instr::InitArray(slot) => {
                    let len = block.arrays[slot as usize].len;
                    let frame = &mut self.scratch.frames[depth];
                    let items = &mut frame.arrays[slot as usize];
                    items.clear();
                    items.resize(len, 0);
                    let sitems = &mut frame.sarrays[slot as usize];
                    sitems.clear();
                    sitems.resize(len, Term::int(0));
                }
                Instr::Neg => {
                    let (c, s) = self.pop();
                    let v = c.int()?.checked_neg().ok_or_else(|| {
                        Fault::new(FaultKind::Overflow, "arithmetic overflow in negation")
                    })?;
                    self.scratch.stack.push((CVal::Int(v), Sym::I(-s.int())));
                }
                Instr::Not => {
                    let (c, s) = self.pop();
                    let v = !c.bool()?;
                    self.scratch
                        .stack
                        .push((CVal::Bool(v), Sym::B(s.boolean().negate())));
                }
                Instr::Bin(op) => {
                    let (cb, sb) = self.pop();
                    let (ca, sa) = self.pop();
                    let cv = eval_binop(op, ca, cb)?;
                    let sym = self
                        .sym
                        .symbolic_binop(self.ctx, self.inputs, op, sa, sb, ca, cb, cv)
                        .map_err(Fault::other)?;
                    self.scratch.stack.push((cv, sym));
                }
                Instr::CallNative { native, argc } => {
                    let (cvals, terms) = self.pop_args(argc as usize)?;
                    let entry = &cp.natives[native as usize];
                    if entry.arity != cvals.len() {
                        return Err(Fault::native(format!(
                            "native `{}` expects {} arguments, got {}",
                            entry.name,
                            entry.arity,
                            cvals.len()
                        )));
                    }
                    let out = (entry.imp)(&cvals);
                    self.sym
                        .trace
                        .native_calls
                        .push((entry.name.clone(), cvals.clone(), out));
                    let fsym = self.native_syms[native as usize].ok_or_else(|| {
                        Fault::other(format!("native `{}` not in context", entry.name))
                    })?;
                    let term = self
                        .sym
                        .native_result(self.inputs, fsym, &cvals, terms, out);
                    self.scratch.stack.push((CVal::Int(out), Sym::I(term)));
                }
                Instr::CallFn { func } => {
                    let f = &cp.funcs[func as usize];
                    let (cvals, terms) = self.pop_args(f.arity)?;
                    if self.sym.summarize_calls {
                        // §8 compositional mode: concrete body execution
                        // with recording suppressed, then a sampled
                        // uninterpreted application.
                        let fsym = self.defined_syms[func as usize].ok_or_else(|| {
                            Fault::other(format!("fn `{}` not in context", f.name))
                        })?;
                        self.sym.suppress += 1;
                        let concrete_terms: Vec<Term> =
                            cvals.iter().map(|v| Term::int(*v)).collect();
                        let res = self.call_fn(func as usize, depth, &cvals, concrete_terms);
                        self.sym.suppress -= 1;
                        match res? {
                            Ok((out, _)) => {
                                let term = self.sym.summarized_result(fsym, &cvals, terms, out);
                                self.scratch.stack.push((CVal::Int(out), Sym::I(term)));
                            }
                            Err(stop) => return Ok(Exit::Stop(stop)),
                        }
                    } else {
                        match self.call_fn(func as usize, depth, &cvals, terms)? {
                            Ok((out, t)) => self.scratch.stack.push((CVal::Int(out), Sym::I(t))),
                            Err(stop) => return Ok(Exit::Stop(stop)),
                        }
                    }
                }
                Instr::UndefinedCall { name, argc } => {
                    let _ = self.pop_args(argc as usize)?;
                    let name = &cp.strings[name as usize];
                    return Err(Fault::other(format!("callable `{name}` is not defined")));
                }
                Instr::Branch { id, if_false } => {
                    let (c, s) = self.pop();
                    let taken = c.bool()?;
                    let formula = s.boolean();
                    self.sym
                        .record_branch(self.ctx, self.inputs, id, taken, formula);
                    if !taken {
                        pc = if_false as usize;
                    }
                }
                Instr::Jump(target) => pc = target as usize,
                Instr::Error(code) => return Ok(Exit::Stop(Outcome::Error(code))),
                Instr::ReturnBare => return Ok(Exit::Stop(Outcome::Returned)),
                Instr::ReturnValue => {
                    let (c, s) = self.pop();
                    return Ok(Exit::Ret(c.int()?, s.int()));
                }
            }
        }
        Ok(Exit::Fall)
    }

    /// Runs a defined function's block in a fresh frame. The outer
    /// `Result` is a fault; the inner one distinguishes a returned value
    /// from a whole-program stop raised inside the body (the walker's
    /// `Halt::Stop`).
    #[allow(clippy::type_complexity)]
    fn call_fn(
        &mut self,
        func: usize,
        depth: usize,
        cvals: &[i64],
        terms: Vec<Term>,
    ) -> Result<Result<(i64, Term), Outcome>, Fault> {
        let f = &self.cp.funcs[func];
        let target = &self.cp.blocks[f.block];
        if self.scratch.frames.len() <= depth + 1 {
            self.scratch.frames.push(Frame::default());
        }
        let frame = &mut self.scratch.frames[depth + 1];
        frame.size_for(target.scalars, target.arrays.len());
        frame.scalars[..cvals.len()].copy_from_slice(cvals);
        for (slot, t) in terms.into_iter().enumerate() {
            frame.sterms[slot] = t;
        }
        let block = f.block;
        let name_idx = func;
        match self.exec_block(block, depth + 1)? {
            Exit::Ret(v, t) => Ok(Ok((v, t))),
            Exit::Fall | Exit::Stop(Outcome::Returned) => Err(Fault::other(format!(
                "fn `{}` terminated without returning a value",
                self.cp.funcs[name_idx].name
            ))),
            Exit::Stop(o) => Ok(Err(o)),
        }
    }

    fn pop(&mut self) -> (CVal, Sym) {
        self.scratch
            .stack
            .pop()
            .expect("compiled code keeps the operand stack balanced")
    }

    /// Pops `n` argument pairs in call order, coercing the concrete side
    /// to integers (the walker coerces each argument as it evaluates).
    fn pop_args(&mut self, n: usize) -> Result<(Vec<i64>, Vec<Term>), Fault> {
        let at = self.scratch.stack.len() - n;
        let mut cvals = Vec::with_capacity(n);
        let mut terms = Vec::with_capacity(n);
        for (c, s) in self.scratch.stack.drain(at..) {
            cvals.push(c.int()?);
            terms.push(s.int());
        }
        Ok((cvals, terms))
    }
}

thread_local! {
    static SCRATCH: RefCell<ConcolicScratch> = RefCell::new(ConcolicScratch::new());
}

/// Runs one concolic execution of a compiled program under a strategy's
/// [`ExecProfile`]: the bytecode fast path for
/// [`crate::execute_profiled`]. Uses the per-thread scratch pool.
///
/// # Panics
///
/// Panics if the input vector width does not match the program.
pub fn execute_compiled_profiled(
    ctx: &ConcolicContext,
    cp: &CompiledProgram,
    inputs: &InputVector,
    fuel: u64,
    profile: ExecProfile,
) -> ConcolicRun {
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => {
            execute_compiled_with_scratch(&mut scratch, ctx, cp, inputs, fuel, profile)
        }
        // A native implementation re-entered the VM on this thread; use
        // fresh scratch for the nested run.
        Err(_) => execute_compiled_with_scratch(
            &mut ConcolicScratch::new(),
            ctx,
            cp,
            inputs,
            fuel,
            profile,
        ),
    })
}

/// [`execute_compiled_profiled`] against caller-owned scratch (used by
/// the determinism tests; campaigns use the thread-local pool).
pub fn execute_compiled_with_scratch(
    scratch: &mut ConcolicScratch,
    ctx: &ConcolicContext,
    cp: &CompiledProgram,
    inputs: &InputVector,
    fuel: u64,
    profile: ExecProfile,
) -> ConcolicRun {
    assert_eq!(inputs.len(), cp.input_width, "input vector width mismatch");
    scratch.stack.clear();
    if scratch.frames.is_empty() {
        scratch.frames.push(Frame::default());
    }
    let main = &cp.blocks[cp.main];
    {
        let frame = &mut scratch.frames[0];
        frame.size_for(main.scalars, main.arrays.len());
        let mut flat = 0usize;
        for p in &cp.params {
            match *p {
                ParamSlot::Scalar(slot) => {
                    frame.scalars[slot as usize] = inputs.get(flat).expect("width checked");
                    frame.sterms[slot as usize] = ctx.input_term(flat);
                    flat += 1;
                }
                ParamSlot::Array(slot, len) => {
                    let arr = &mut frame.arrays[slot as usize];
                    arr.clear();
                    arr.extend((flat..flat + len).map(|k| inputs.get(k).expect("width checked")));
                    let sarr = &mut frame.sarrays[slot as usize];
                    sarr.clear();
                    sarr.extend((0..len).map(|k| ctx.input_term(flat + k)));
                    flat += len;
                }
            }
        }
    }
    let native_syms = cp.natives.iter().map(|n| ctx.native_sym(&n.name)).collect();
    let defined_syms = cp.funcs.iter().map(|f| ctx.defined_sym(&f.name)).collect();
    let main_idx = cp.main;
    let mut vm = Vm {
        ctx,
        cp,
        inputs,
        scratch,
        sym: SymSide::new(profile.mode, profile.summarize_calls),
        native_syms,
        defined_syms,
        fuel,
        instructions: 0,
    };
    let mut result = None;
    let mut result_term = None;
    let outcome = match vm.exec_block(main_idx, 0) {
        Ok(Exit::Fall) | Ok(Exit::Stop(Outcome::Returned)) => Outcome::Returned,
        Ok(Exit::Ret(v, t)) => {
            result = Some(v);
            result_term = Some(t);
            Outcome::Returned
        }
        Ok(Exit::Stop(o)) => o,
        Err(fault) => Outcome::RuntimeFault(fault),
    };
    let instructions = vm.instructions;
    vm.sym.finish(outcome, result, result_term, instructions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_opts, SymbolicMode};
    use hotg_lang::compile::compile;
    use hotg_lang::corpus;

    /// Field-by-field equality of everything observable in a run
    /// (`instructions` excluded: it is announcement-only accounting).
    fn assert_runs_equal(a: &ConcolicRun, b: &ConcolicRun, what: &str) {
        assert_eq!(a.outcome, b.outcome, "{what}: outcome");
        assert_eq!(a.trace.branches, b.trace.branches, "{what}: branches");
        assert_eq!(
            a.trace.native_calls, b.trace.native_calls,
            "{what}: native calls"
        );
        assert_eq!(a.pc, b.pc, "{what}: path constraint");
        assert_eq!(a.samples, b.samples, "{what}: samples");
        assert_eq!(
            a.concretizations, b.concretizations,
            "{what}: concretizations"
        );
        assert_eq!(a.uf_apps, b.uf_apps, "{what}: uf_apps");
        assert_eq!(a.result, b.result, "{what}: result");
        assert_eq!(a.result_term, b.result_term, "{what}: result term");
    }

    #[test]
    fn shadow_vm_matches_walker_across_corpus_and_modes() {
        for (name, ctor) in corpus::all() {
            let (program, natives) = ctor();
            let ctx = ConcolicContext::new(&program);
            let cp = compile(&program, &natives).unwrap();
            let width = program.input_width();
            for mode in SymbolicMode::ALL {
                for summarize in [false, true] {
                    for seed in 0..4i64 {
                        let inputs: Vec<i64> = (0..width)
                            .map(|k| {
                                seed.wrapping_mul(2654435761).wrapping_add(k as i64 * 131) % 500
                            })
                            .collect();
                        let iv = InputVector::new(inputs);
                        let tree =
                            execute_opts(&ctx, &program, &natives, &iv, mode, 10_000, summarize);
                        let vm = execute_compiled_profiled(
                            &ctx,
                            &cp,
                            &iv,
                            10_000,
                            ExecProfile {
                                mode,
                                summarize_calls: summarize,
                            },
                        );
                        assert_runs_equal(
                            &tree,
                            &vm,
                            &format!("{name}/{:?}/summarize={summarize}/seed={seed}", mode),
                        );
                        assert!(vm.instructions > 0, "{name}: instructions retired");
                    }
                }
            }
        }
    }

    #[test]
    fn shadow_vm_fuel_points_match_walker() {
        let (program, natives) = corpus::crc_guard();
        let ctx = ConcolicContext::new(&program);
        let cp = compile(&program, &natives).unwrap();
        let iv = InputVector::new(vec![7; program.input_width()]);
        for fuel in 0..150 {
            let tree = execute_opts(
                &ctx,
                &program,
                &natives,
                &iv,
                SymbolicMode::Uninterpreted,
                fuel,
                false,
            );
            let vm = execute_compiled_profiled(
                &ctx,
                &cp,
                &iv,
                fuel,
                ExecProfile::new(SymbolicMode::Uninterpreted),
            );
            assert_runs_equal(&tree, &vm, &format!("fuel={fuel}"));
        }
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        let (program, natives) = corpus::fanout();
        let ctx = ConcolicContext::new(&program);
        let cp = compile(&program, &natives).unwrap();
        let iv = InputVector::new(vec![3; program.input_width()]);
        let profile = ExecProfile::new(SymbolicMode::Uninterpreted);
        let mut scratch = ConcolicScratch::new();
        let fresh = execute_compiled_with_scratch(
            &mut ConcolicScratch::new(),
            &ctx,
            &cp,
            &iv,
            10_000,
            profile,
        );
        for _ in 0..3 {
            let reused =
                execute_compiled_with_scratch(&mut scratch, &ctx, &cp, &iv, 10_000, profile);
            assert_runs_equal(&fresh, &reused, "scratch reuse");
            assert_eq!(fresh.instructions, reused.instructions);
        }
    }
}
