//! Abstract domains for the `mini` analyses: taint sets over flat input
//! indices, integer intervals with widening, and three-valued truth.

use hotg_lang::BinOp;
use std::collections::BTreeSet;
use std::fmt;

/// Taint: the set of flat input indices an abstract value may depend on.
///
/// Flat indices follow the concolic flattening (parameter order, array
/// parameters contributing one index per element), so taint sets are
/// directly comparable with the free symbolic variables of a dynamic
/// path-constraint formula.
pub type Taint = BTreeSet<usize>;

/// Three-valued static truth of a boolean expression (branch condition).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Constancy {
    /// Provably true in every execution reaching the site.
    AlwaysTrue,
    /// Provably false in every execution reaching the site.
    AlwaysFalse,
    /// Not statically decided.
    Unknown,
}

impl Constancy {
    /// Least upper bound: agreeing verdicts survive, disagreement is
    /// [`Constancy::Unknown`].
    pub fn join(self, other: Constancy) -> Constancy {
        if self == other {
            self
        } else {
            Constancy::Unknown
        }
    }

    /// Logical negation (`Unknown` stays `Unknown`).
    #[allow(clippy::should_implement_trait)] // abstract transformer, not operator overload
    pub fn not(self) -> Constancy {
        match self {
            Constancy::AlwaysTrue => Constancy::AlwaysFalse,
            Constancy::AlwaysFalse => Constancy::AlwaysTrue,
            Constancy::Unknown => Constancy::Unknown,
        }
    }

    /// Three-valued conjunction.
    pub fn and(self, other: Constancy) -> Constancy {
        match (self, other) {
            (Constancy::AlwaysFalse, _) | (_, Constancy::AlwaysFalse) => Constancy::AlwaysFalse,
            (Constancy::AlwaysTrue, Constancy::AlwaysTrue) => Constancy::AlwaysTrue,
            _ => Constancy::Unknown,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: Constancy) -> Constancy {
        match (self, other) {
            (Constancy::AlwaysTrue, _) | (_, Constancy::AlwaysTrue) => Constancy::AlwaysTrue,
            (Constancy::AlwaysFalse, Constancy::AlwaysFalse) => Constancy::AlwaysFalse,
            _ => Constancy::Unknown,
        }
    }
}

impl fmt::Display for Constancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Constancy::AlwaysTrue => "always-true",
            Constancy::AlwaysFalse => "always-false",
            Constancy::Unknown => "unknown",
        })
    }
}

/// A (possibly unbounded) integer interval `[lo, hi]`; `None` bounds mean
/// −∞ / +∞. Never empty: refinement that would produce an empty interval
/// is dropped by the caller (the branch was decidable anyway).
///
/// Runtime arithmetic is *checked* (`mini` faults on overflow), so any
/// operation whose mathematical bounds leave the `i64` range soundly goes
/// to an unbounded side — executions past an overflow do not exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i64>,
}

fn clamp_lo(v: i128) -> Option<i64> {
    if v < i64::MIN as i128 || v > i64::MAX as i128 {
        None
    } else {
        Some(v as i64)
    }
}

fn clamp_hi(v: i128) -> Option<i64> {
    clamp_lo(v)
}

impl Interval {
    /// The full `i64` range (⊤).
    pub const TOP: Interval = Interval { lo: None, hi: None };

    /// The singleton interval `[v, v]`.
    pub fn constant(v: i64) -> Interval {
        Interval {
            lo: Some(v),
            hi: Some(v),
        }
    }

    /// `[lo, hi]` with known bounds.
    pub fn new(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi);
        Interval {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// `Some(v)` iff this is the singleton `[v, v]`.
    pub fn as_const(self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// `true` iff both bounds are unknown.
    pub fn is_top(self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Standard widening: bounds that moved since `self` jump to ±∞.
    /// Guarantees loop fixpoints terminate.
    pub fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: match (self.lo, next.lo) {
                (Some(a), Some(b)) if b >= a => Some(a),
                _ => None,
            },
            hi: match (self.hi, next.hi) {
                (Some(a), Some(b)) if b <= a => Some(a),
                _ => None,
            },
        }
    }

    /// Intersection; `None` when empty.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let (Some(a), Some(b)) = (lo, hi) {
            if a > b {
                return None;
            }
        }
        Some(Interval { lo, hi })
    }

    /// Abstract addition.
    #[allow(clippy::should_implement_trait)] // abstract transformer, not operator overload
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => clamp_lo(a as i128 + b as i128),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => clamp_hi(a as i128 + b as i128),
                _ => None,
            },
        }
    }

    /// Abstract subtraction.
    #[allow(clippy::should_implement_trait)] // abstract transformer, not operator overload
    pub fn sub(self, other: Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.hi) {
                (Some(a), Some(b)) => clamp_lo(a as i128 - b as i128),
                _ => None,
            },
            hi: match (self.hi, other.lo) {
                (Some(a), Some(b)) => clamp_hi(a as i128 - b as i128),
                _ => None,
            },
        }
    }

    /// Abstract negation.
    #[allow(clippy::should_implement_trait)] // abstract transformer, not operator overload
    pub fn neg(self) -> Interval {
        Interval {
            lo: self.hi.and_then(|v| clamp_lo(-(v as i128))),
            hi: self.lo.and_then(|v| clamp_hi(-(v as i128))),
        }
    }

    /// Abstract multiplication (precise on bounded operands, ⊤ when a
    /// corner product leaves `i64`).
    #[allow(clippy::should_implement_trait)] // abstract transformer, not operator overload
    pub fn mul(self, other: Interval) -> Interval {
        if let (Some(al), Some(ah), Some(bl), Some(bh)) = (self.lo, self.hi, other.lo, other.hi) {
            let corners = [
                al as i128 * bl as i128,
                al as i128 * bh as i128,
                ah as i128 * bl as i128,
                ah as i128 * bh as i128,
            ];
            let lo = corners.iter().copied().min().unwrap();
            let hi = corners.iter().copied().max().unwrap();
            return Interval {
                lo: clamp_lo(lo),
                hi: clamp_hi(hi),
            };
        }
        // One side unbounded: only the zero annihilator is still exact.
        if self.as_const() == Some(0) || other.as_const() == Some(0) {
            return Interval::constant(0);
        }
        Interval::TOP
    }

    /// Abstract truncating division / remainder: precise only when both
    /// operands are constants and the divisor is nonzero, else ⊤ (a zero
    /// divisor faults at runtime, so reaching code sees any value).
    pub fn div_like(self, op: BinOp, other: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            if b != 0 {
                let r = if op == BinOp::Div {
                    a.checked_div(b)
                } else {
                    a.checked_rem(b)
                };
                if let Some(r) = r {
                    return Interval::constant(r);
                }
            }
        }
        Interval::TOP
    }

    /// Three-valued truth of `a op b` for a comparison operator.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a comparison.
    pub fn compare(op: BinOp, a: Interval, b: Interval) -> Constancy {
        // `lt(a, b)`: is a < b always/never/unknown.
        fn lt(a: Interval, b: Interval) -> Constancy {
            match (a.hi, b.lo) {
                (Some(ah), Some(bl)) if ah < bl => return Constancy::AlwaysTrue,
                _ => {}
            }
            match (a.lo, b.hi) {
                (Some(al), Some(bh)) if al >= bh => Constancy::AlwaysFalse,
                _ => Constancy::Unknown,
            }
        }
        fn le(a: Interval, b: Interval) -> Constancy {
            match (a.hi, b.lo) {
                (Some(ah), Some(bl)) if ah <= bl => return Constancy::AlwaysTrue,
                _ => {}
            }
            match (a.lo, b.hi) {
                (Some(al), Some(bh)) if al > bh => Constancy::AlwaysFalse,
                _ => Constancy::Unknown,
            }
        }
        match op {
            BinOp::Lt => lt(a, b),
            BinOp::Le => le(a, b),
            BinOp::Gt => lt(b, a),
            BinOp::Ge => le(b, a),
            BinOp::Eq => match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) if x == y => Constancy::AlwaysTrue,
                _ => {
                    if a.intersect(b).is_none() {
                        Constancy::AlwaysFalse
                    } else {
                        Constancy::Unknown
                    }
                }
            },
            BinOp::Ne => Interval::compare(BinOp::Eq, a, b).not(),
            other => panic!("operator {other:?} is not a comparison"),
        }
    }
}

impl Default for Interval {
    fn default() -> Interval {
        Interval::TOP
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Some(v) => write!(f, "[{v}, ")?,
            None => write!(f, "[-inf, ")?,
        }
        match self.hi {
            Some(v) => write!(f, "{v}]"),
            None => write!(f, "+inf]"),
        }
    }
}

/// An abstract scalar: taint set plus value interval. The taint set is
/// *syntactic* — it over-approximates the free input variables of the
/// symbolic term the concolic executor would build for the same
/// expression, not merely value dependence (so `0 * x` is tainted by `x`
/// even though its value is always 0).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AbsVal {
    /// Flat input indices this value may (syntactically) depend on.
    pub taint: Taint,
    /// Value bounds.
    pub itv: Interval,
}

impl AbsVal {
    /// The untainted constant `v`.
    pub fn constant(v: i64) -> AbsVal {
        AbsVal {
            taint: Taint::new(),
            itv: Interval::constant(v),
        }
    }

    /// Fully unknown value with the given taint.
    pub fn tainted(taint: Taint) -> AbsVal {
        AbsVal {
            taint,
            itv: Interval::TOP,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            taint: self.taint.union(&other.taint).copied().collect(),
            itv: self.itv.join(other.itv),
        }
    }

    /// Widening (taints join — they form a finite lattice — and
    /// intervals widen).
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        AbsVal {
            taint: self.taint.union(&next.taint).copied().collect(),
            itv: self.itv.widen(next.itv),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constancy_algebra() {
        use Constancy::*;
        assert_eq!(AlwaysTrue.join(AlwaysTrue), AlwaysTrue);
        assert_eq!(AlwaysTrue.join(AlwaysFalse), Unknown);
        assert_eq!(AlwaysTrue.not(), AlwaysFalse);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(AlwaysFalse.and(Unknown), AlwaysFalse);
        assert_eq!(AlwaysTrue.or(Unknown), AlwaysTrue);
        assert_eq!(Unknown.and(AlwaysTrue), Unknown);
    }

    #[test]
    fn interval_arith() {
        let a = Interval::new(1, 3);
        let b = Interval::new(10, 20);
        assert_eq!(a.add(b), Interval::new(11, 23));
        assert_eq!(b.sub(a), Interval::new(7, 19));
        assert_eq!(a.neg(), Interval::new(-3, -1));
        assert_eq!(a.mul(b), Interval::new(10, 60));
        assert_eq!(
            Interval::new(-2, 3).mul(Interval::new(5, 7)),
            Interval::new(-14, 21)
        );
        assert_eq!(
            Interval::constant(0).mul(Interval::TOP),
            Interval::constant(0)
        );
        assert!(Interval::TOP.add(a).is_top());
        // Potential overflow goes unbounded, not wrapped.
        let big = Interval::constant(i64::MAX);
        assert_eq!(big.add(Interval::constant(1)).hi, None);
    }

    #[test]
    fn interval_div_like() {
        assert_eq!(
            Interval::constant(7).div_like(BinOp::Div, Interval::constant(2)),
            Interval::constant(3)
        );
        assert_eq!(
            Interval::constant(7).div_like(BinOp::Mod, Interval::constant(2)),
            Interval::constant(1)
        );
        assert!(Interval::constant(7)
            .div_like(BinOp::Div, Interval::constant(0))
            .is_top());
        assert!(Interval::new(1, 2)
            .div_like(BinOp::Div, Interval::constant(2))
            .is_top());
    }

    #[test]
    fn interval_compare() {
        use Constancy::*;
        let lo = Interval::new(0, 5);
        let hi = Interval::new(6, 9);
        assert_eq!(Interval::compare(BinOp::Lt, lo, hi), AlwaysTrue);
        assert_eq!(Interval::compare(BinOp::Ge, lo, hi), AlwaysFalse);
        assert_eq!(Interval::compare(BinOp::Eq, lo, hi), AlwaysFalse);
        assert_eq!(Interval::compare(BinOp::Ne, lo, hi), AlwaysTrue);
        assert_eq!(
            Interval::compare(BinOp::Eq, Interval::constant(4), Interval::constant(4)),
            AlwaysTrue
        );
        assert_eq!(
            Interval::compare(BinOp::Lt, lo, Interval::new(5, 9)),
            Unknown
        );
        assert_eq!(
            Interval::compare(BinOp::Le, lo, Interval::new(5, 9)),
            AlwaysTrue
        );
        assert_eq!(Interval::compare(BinOp::Gt, Interval::TOP, lo), Unknown);
    }

    #[test]
    fn interval_join_widen_intersect() {
        let a = Interval::new(1, 3);
        let b = Interval::new(5, 7);
        assert_eq!(a.join(b), Interval::new(1, 7));
        assert_eq!(
            a.widen(Interval::new(1, 9)),
            Interval {
                lo: Some(1),
                hi: None
            }
        );
        assert_eq!(
            a.widen(Interval::new(0, 3)),
            Interval {
                lo: None,
                hi: Some(3)
            }
        );
        assert_eq!(a.intersect(b), None);
        assert_eq!(a.intersect(Interval::new(2, 9)), Some(Interval::new(2, 3)));
        assert_eq!(Interval::TOP.intersect(a), Some(a));
    }

    #[test]
    fn absval_ops() {
        let x = AbsVal {
            taint: [0].into(),
            itv: Interval::new(1, 2),
        };
        let y = AbsVal {
            taint: [1].into(),
            itv: Interval::new(5, 6),
        };
        let j = x.join(&y);
        assert_eq!(j.taint, [0, 1].into());
        assert_eq!(j.itv, Interval::new(1, 6));
        assert_eq!(AbsVal::constant(4).itv.as_const(), Some(4));
    }
}
