//! Property tests for Theorems 2 and 3 of the paper: path constraints
//! generated with *sound concretization* and with *uninterpreted
//! functions* are sound — every input assignment satisfying `pc` (under
//! the real interpretation of the unknown functions) drives the program
//! along the same path.

mod common;

use common::{arb_inputs, arb_program, model_with_real_functions, test_natives};
use hotg_concolic::{execute, ConcolicContext, SymbolicMode};
use hotg_lang::{run, InputVector};
use hotg_prop::prelude::*;

const FUEL: u64 = 50_000;

fn soundness_check(
    program: &hotg_lang::Program,
    seed_inputs: &[i64],
    candidate: &[i64],
    mode: SymbolicMode,
) -> Result<(), TestCaseError> {
    let natives = test_natives();
    let ctx = ConcolicContext::new(program);
    let base = execute(
        &ctx,
        program,
        &natives,
        &InputVector::new(seed_inputs.to_vec()),
        mode,
        FUEL,
    );
    let pc = base.pc.formula();
    let Some(model) = model_with_real_functions(&ctx, candidate, &pc) else {
        return Ok(()); // an application faulted under the candidate; vacuous
    };
    if pc.eval(&model) != Some(true) {
        return Ok(()); // candidate does not satisfy pc; nothing to check
    }
    // The candidate satisfies the path constraint: by Theorems 2/3 it must
    // follow the same execution path.
    let (_, trace) = run(
        program,
        &natives,
        &InputVector::new(candidate.to_vec()),
        FUEL,
    );
    prop_assert_eq!(
        &trace.branches,
        &base.trace.branches,
        "soundness violated in {:?} mode for candidate {:?} (seed {:?}); pc = {}",
        mode,
        candidate,
        seed_inputs,
        pc.display(ctx.sig())
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 2: sound concretization yields sound path constraints.
    #[test]
    fn theorem2_sound_concretization(
        program in arb_program(),
        seed in arb_inputs(),
        candidate in arb_inputs(),
    ) {
        soundness_check(&program, &seed, &candidate, SymbolicMode::SoundConcretize)?;
    }

    /// Theorem 3: uninterpreted-function path constraints are sound.
    #[test]
    fn theorem3_uninterpreted(
        program in arb_program(),
        seed in arb_inputs(),
        candidate in arb_inputs(),
    ) {
        soundness_check(&program, &seed, &candidate, SymbolicMode::Uninterpreted)?;
    }

    /// The generating inputs themselves always satisfy their own pc
    /// (completeness on the diagonal) in every mode, under the real
    /// function interpretation.
    #[test]
    fn pc_reflexivity(program in arb_program(), seed in arb_inputs()) {
        let natives = test_natives();
        let ctx = ConcolicContext::new(&program);
        for mode in SymbolicMode::ALL {
            let base = execute(
                &ctx,
                &program,
                &natives,
                &InputVector::new(seed.clone()),
                mode,
                FUEL,
            );
            let pc = base.pc.formula();
            if let Some(model) = model_with_real_functions(&ctx, &seed, &pc) {
                prop_assert_eq!(
                    pc.eval(&model),
                    Some(true),
                    "pc must hold on its own inputs ({:?} mode): {}",
                    mode,
                    pc.display(ctx.sig())
                );
            }
        }
    }
}
